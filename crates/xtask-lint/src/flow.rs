//! The flow-aware passes: rules that need the syntax tree from
//! [`crate::ast`] rather than a token scan.
//!
//! Four passes run here, each wired from its own `lint.toml` section:
//!
//! * **channel-topology** (`[channel]`) — reply `Sender`s threaded
//!   through enum variants must be sent on (or forwarded), never
//!   silently dropped; and no call to a channel-touching function may
//!   run inside a held lock's lexical scope (the interprocedural
//!   generalization of `lock-scope-discipline`).
//! * **counter-accounting** (`[counters]`) — every integer field of the
//!   declared counter structs needs ≥1 non-test increment site outside
//!   its declaration file and ≥1 test assertion, cross-file.
//! * **wire-safety** (`[wire]`) — bare `as` casts to integer types and
//!   unchecked `+`/`*` on declared length/byte quantities are banned in
//!   the framing files.
//! * **error-liveness** (`[[error_enum]]`) — every variant of an audited
//!   error enum is constructed somewhere outside tests and has a
//!   mapping arm (pattern) in its wire codec file.
//!
//! All reporting goes through the same positions, test masks and allow
//! markers as the token rules, so `lint:allow` works unchanged.

use crate::ast::{self, Block, EnumItem, Expr, Item, Pat, Stmt};
use crate::manifest::Manifest;
use crate::rules::{FileAnalysis, Violation, CHANNEL, COUNTERS, ERROR_LIVE, WIRE};
use std::collections::{BTreeMap, BTreeSet};

/// Channel primitives whose *direct* use under a lock is already covered
/// by `lock-scope-discipline`; here they seed the interprocedural set.
const SEND_RECV: &[&str] = &[
    "send",
    "recv",
    "try_send",
    "try_recv",
    "recv_timeout",
    "send_timeout",
];

use crate::rules::path_under as under;

/// Integration-test files (`crates/*/tests/...`) are test code even
/// though they carry no `#[cfg(test)]`.
fn is_test_file(rel: &str) -> bool {
    rel.contains("/tests/")
}

fn int_primitive(ty: &str) -> bool {
    matches!(
        ty.trim(),
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

/// The identifier a value expression "is about", for quantity matching:
/// the last path segment, field name or method name at the leaf.
fn leaf_name(expr: &Expr) -> Option<&str> {
    match expr {
        Expr::Path { segments, .. } => segments.last().map(String::as_str),
        Expr::Field { name, .. } | Expr::MethodCall { name, .. } => Some(name.as_str()),
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => leaf_name(expr),
        Expr::Call { callee, .. } => leaf_name(callee),
        _ => None,
    }
}

/// Does the raw code-token range `[start, end)` contain ident `name`?
fn range_has_ident(fa: &FileAnalysis, start: usize, end: usize, name: &str) -> bool {
    (start..end).any(|pos| fa.is_ident(pos, name))
}

/// Run every configured flow pass over the analyzed workspace.
pub fn check_flow(
    manifest: &Manifest,
    files: &BTreeMap<String, FileAnalysis>,
    out: &mut Vec<Violation>,
) {
    if let Some(channel) = &manifest.channel {
        check_channel(&channel.paths, files, out);
    }
    if let Some(counters) = &manifest.counters {
        check_counters(&counters.file, &counters.structs, files, out);
    }
    if let Some(wire) = &manifest.wire {
        check_wire(&wire.paths, &wire.quantities, files, out);
    }
    for cfg in &manifest.error_enums {
        check_error_liveness(&cfg.name, &cfg.decl, &cfg.codec, files, out);
    }
}

// ==================================================== channel-topology

/// Scan state for one sender name inside one region (fn body or arm).
struct SenderScan<'a> {
    fa: &'a FileAnalysis,
    name: &'a str,
    /// Uses that are not explicit drops (sends, forwards, clones...).
    uses: usize,
    /// Positions of `drop(name)` calls and `let _ = name;` statements.
    drops: Vec<usize>,
}

impl SenderScan<'_> {
    fn expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Call { callee, args, .. } => {
                let is_drop = matches!(
                    callee.as_ref(),
                    Expr::Path { segments, .. } if segments.last().map(String::as_str) == Some("drop")
                );
                if is_drop && args.len() == 1 {
                    if let Expr::Path { pos, segments } = &args[0] {
                        if segments.len() == 1 && segments[0] == self.name {
                            self.drops.push(*pos);
                            return;
                        }
                    }
                }
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
                for b in expr.child_blocks() {
                    self.block(b);
                }
            }
            Expr::Path { segments, .. } => {
                if segments.first().map(String::as_str) == Some(self.name) {
                    self.uses += 1;
                }
            }
            Expr::Macro {
                args_start,
                args_end,
                ..
            } => {
                // Macro bodies are scanned as raw tokens: a mention in
                // any macro argument counts as a use.
                if range_has_ident(self.fa, *args_start, *args_end, self.name) {
                    self.uses += 1;
                }
            }
            _ => {
                for child in expr.children() {
                    self.expr(child);
                }
                for b in expr.child_blocks() {
                    self.block(b);
                }
            }
        }
    }

    fn block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let {
                    pat,
                    init,
                    else_block,
                    ..
                } => {
                    let wild_drop = matches!(pat, Pat::Wild { .. })
                        && matches!(
                            init,
                            Some(Expr::Path { segments, .. })
                                if segments.len() == 1 && segments[0] == self.name
                        );
                    if wild_drop {
                        if let Some(init) = init {
                            self.drops.push(init.pos());
                        }
                        continue;
                    }
                    if let Some(init) = init {
                        self.expr(init);
                    }
                    if let Some(b) = else_block {
                        self.block(b);
                    }
                }
                Stmt::Expr { expr, .. } => self.expr(expr),
                Stmt::Item(_) => {}
            }
        }
    }
}

/// Map from enum-variant name to `(enum name, reply-sender field names)`,
/// built from every scanned file so cross-file matches resolve.
fn sender_variants(
    files: &BTreeMap<String, FileAnalysis>,
) -> BTreeMap<String, (String, Vec<String>)> {
    let mut map = BTreeMap::new();
    fn walk(items: &[Item], map: &mut BTreeMap<String, (String, Vec<String>)>) {
        for item in items {
            match item {
                Item::Enum(EnumItem { name, variants, .. }) => {
                    for v in variants {
                        let senders: Vec<String> = v
                            .fields
                            .iter()
                            .filter(|f| f.ty.contains("Sender"))
                            .map(|f| f.name.clone())
                            .collect();
                        if !senders.is_empty() {
                            map.insert(v.name.clone(), (name.clone(), senders));
                        }
                    }
                }
                Item::Mod(m) => walk(&m.items, map),
                Item::Impl(i) => walk(&i.items, map),
                _ => {}
            }
        }
    }
    for fa in files.values() {
        walk(&fa.ast().items, &mut map);
    }
    map
}

fn check_channel(
    paths: &[String],
    files: &BTreeMap<String, FileAnalysis>,
    out: &mut Vec<Violation>,
) {
    let variants = sender_variants(files);
    let scoped: Vec<&FileAnalysis> = files
        .iter()
        .filter(|(rel, _)| under(paths, rel) && !is_test_file(rel))
        .map(|(_, fa)| fa)
        .collect();

    // (a) + (b) on match arms: every sender field of a matched variant
    // must be bound and used; `..`/`_` discards and explicit drops are
    // the drain-race bug class.
    for fa in &scoped {
        ast::visit_exprs(fa.ast(), &mut |expr| {
            let Expr::Match { arms, .. } = expr else {
                return;
            };
            for arm in arms {
                if fa.in_test(arm.pos) {
                    continue;
                }
                let mut pats: Vec<&Pat> = Vec::new();
                flatten_or(&arm.pat, &mut pats);
                for pat in pats {
                    let Pat::Struct {
                        segments,
                        fields,
                        rest,
                        ..
                    } = pat
                    else {
                        continue;
                    };
                    let Some(last) = segments.last() else {
                        continue;
                    };
                    let Some((enum_name, senders)) = variants.get(last) else {
                        continue;
                    };
                    for sender in senders {
                        let bound = fields.iter().find(|(fname, _)| fname == sender);
                        let binding = match bound {
                            None => {
                                if *rest {
                                    out.push(fa.violation(
                                        CHANNEL,
                                        arm.pos,
                                        format!(
                                            "arm matches `{enum_name}::{last}` but discards reply \
                                             sender `{sender}` via `..` — the peer waiting on it \
                                             hangs; bind it and send"
                                        ),
                                    ));
                                }
                                continue;
                            }
                            Some((fname, None)) => fname.clone(),
                            Some((_, Some(Pat::Wild { .. }))) => {
                                out.push(fa.violation(
                                    CHANNEL,
                                    arm.pos,
                                    format!(
                                        "arm matches `{enum_name}::{last}` but ignores reply \
                                         sender `{sender}` with `_` — the peer waiting on it \
                                         hangs; bind it and send"
                                    ),
                                ));
                                continue;
                            }
                            Some((fname, Some(sub))) => match sub.bindings().first() {
                                Some(name) => (*name).to_string(),
                                None => fname.clone(),
                            },
                        };
                        let mut scan = SenderScan {
                            fa,
                            name: &binding,
                            uses: 0,
                            drops: Vec::new(),
                        };
                        if let Some(guard) = &arm.guard {
                            scan.expr(guard);
                        }
                        scan.expr(&arm.body);
                        if scan.uses == 0 {
                            match scan.drops.first() {
                                Some(&pos) => out.push(fa.violation(
                                    CHANNEL,
                                    pos,
                                    format!(
                                        "reply sender `{binding}` (from `{enum_name}::{last}`) is \
                                         explicitly dropped without sending; answer the peer first"
                                    ),
                                )),
                                None => out.push(fa.violation(
                                    CHANNEL,
                                    arm.pos,
                                    format!(
                                        "reply sender `{binding}` (from `{enum_name}::{last}`) is \
                                         bound but never sent on or forwarded in this arm"
                                    ),
                                )),
                            }
                        }
                    }
                }
            }
        });
    }

    // (b) on fn parameters: a `Sender`-typed parameter whose only use is
    // an explicit drop silently hangs the peer.
    for fa in &scoped {
        ast::visit_fns(fa.ast(), &mut |func| {
            let Some(body) = &func.body else { return };
            if fa.in_test(func.pos) {
                return;
            }
            for param in &func.params {
                if !param.ty.contains("Sender") {
                    continue;
                }
                for name in param.pat.bindings() {
                    let mut scan = SenderScan {
                        fa,
                        name,
                        uses: 0,
                        drops: Vec::new(),
                    };
                    scan.block(body);
                    if scan.uses == 0 {
                        if let Some(&pos) = scan.drops.first() {
                            out.push(fa.violation(
                                CHANNEL,
                                pos,
                                format!(
                                    "`Sender` parameter `{name}` of `{}` is dropped without ever \
                                     sending; the peer waiting on it hangs",
                                    func.name
                                ),
                            ));
                        }
                    }
                }
            }
        });
    }

    // (c) interprocedural lock discipline: compute which named functions
    // (transitively) touch channels, then ban calls to them inside a
    // held lock's lexical scope — the same shape `lock-scope-discipline`
    // catches for direct `.send()`/`.recv()`.
    let mut touchers: BTreeSet<String> = BTreeSet::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for fa in &scoped {
        ast::visit_fns(fa.ast(), &mut |func| {
            let Some(body) = &func.body else { return };
            let mut direct = false;
            let mut targets = BTreeSet::new();
            ast::visit_block_exprs(body, &mut |expr| match expr {
                Expr::MethodCall { name, .. } => {
                    if SEND_RECV.contains(&name.as_str()) {
                        direct = true;
                    } else {
                        targets.insert(name.clone());
                    }
                }
                Expr::Call { callee, .. } => {
                    if let Expr::Path { segments, .. } = callee.as_ref() {
                        if let Some(last) = segments.last() {
                            targets.insert(last.clone());
                        }
                    }
                }
                _ => {}
            });
            if direct {
                touchers.insert(func.name.clone());
            }
            calls.entry(func.name.clone()).or_default().extend(targets);
        });
    }
    loop {
        let before = touchers.len();
        for (name, targets) in &calls {
            if !touchers.contains(name) && targets.iter().any(|t| touchers.contains(t)) {
                touchers.insert(name.clone());
            }
        }
        if touchers.len() == before {
            break;
        }
    }
    for t in SEND_RECV {
        touchers.remove(*t); // direct primitives are lock-scope-discipline's job
    }
    for fa in &scoped {
        let mut stack: Vec<usize> = Vec::new();
        for pos in 0..fa.code_len() {
            if fa.is_punct(pos, '{') {
                stack.push(pos);
            } else if fa.is_punct(pos, '}') {
                stack.pop();
            }
            if fa.in_test(pos) {
                continue;
            }
            let is_lock =
                fa.is_punct(pos, '.') && fa.is_ident(pos + 1, "lock") && fa.is_punct(pos + 2, '(');
            if !is_lock {
                continue;
            }
            let lock_line = fa.line_of(pos + 1);
            let scope_end = stack
                .last()
                .and_then(|&open| fa.brace_close(open))
                .unwrap_or(fa.code_len());
            for probe in pos + 3..scope_end {
                let Some(name) = fa.ident_at(probe) else {
                    continue;
                };
                if !touchers.contains(name) || !fa.is_punct(probe + 1, '(') {
                    continue;
                }
                if fa.is_ident(probe.wrapping_sub(1), "fn") {
                    continue; // a definition, not a call
                }
                out.push(fa.violation(
                    CHANNEL,
                    probe,
                    format!(
                        "call to channel-touching `{name}()` inside the scope of the `.lock()` \
                         taken on line {lock_line}; drop the guard before touching channels"
                    ),
                ));
            }
        }
    }
}

fn flatten_or<'a>(pat: &'a Pat, out: &mut Vec<&'a Pat>) {
    match pat {
        Pat::Or { alts, .. } => {
            for p in alts {
                flatten_or(p, out);
            }
        }
        other => out.push(other),
    }
}

// ================================================== counter-accounting

fn check_counters(
    decl_file: &str,
    structs: &[String],
    files: &BTreeMap<String, FileAnalysis>,
    out: &mut Vec<Violation>,
) {
    let Some(decl_fa) = files.get(decl_file) else {
        out.push(Violation {
            rule: COUNTERS,
            file: decl_file.to_string(),
            line: 0,
            col: 0,
            message: "lint.toml [counters] names a file that was not scanned".to_string(),
            snippet: String::new(),
        });
        return;
    };
    // The audited fields: integer-typed fields of the declared structs.
    struct Counter {
        strukt: String,
        field: String,
        pos: usize,
    }
    let mut counters: Vec<Counter> = Vec::new();
    for name in structs {
        let Some(item) = decl_fa.find_struct(name) else {
            out.push(Violation {
                rule: COUNTERS,
                file: decl_file.to_string(),
                line: 0,
                col: 0,
                message: format!("lint.toml [counters] declares struct `{name}` but {decl_file} does not define it"),
                snippet: String::new(),
            });
            continue;
        };
        for f in &item.fields {
            if int_primitive(&f.ty) {
                counters.push(Counter {
                    strukt: name.clone(),
                    field: f.name.clone(),
                    pos: f.pos,
                });
            }
        }
    }
    if counters.is_empty() {
        return;
    }

    let mut incremented: BTreeSet<&str> = BTreeSet::new();
    let mut asserted: BTreeSet<&str> = BTreeSet::new();
    let field_names: BTreeSet<&str> = counters.iter().map(|c| c.field.as_str()).collect();

    // Accounting is matched by field *name*, so confine the search to
    // the crate that owns the declaration file: a same-named method in
    // another crate's tests must not satisfy a serve counter.
    let crate_prefix = decl_file
        .split_once("/src/")
        .map(|(root, _)| format!("{root}/"))
        .unwrap_or_default();

    for (rel, fa) in files {
        if !rel.starts_with(&crate_prefix) {
            continue;
        }
        let test_file = is_test_file(rel);
        ast::visit_exprs(fa.ast(), &mut |expr| {
            match expr {
                // Increment sites: `x.field += n`, `&mut x.field` (slot
                // increments), `x.field.fetch_add(..)`. Must be real
                // serving code outside the declaration file.
                Expr::Assign {
                    op: Some(ast::BinOp::Add),
                    lhs,
                    ..
                } => {
                    if let Expr::Field { name, pos, .. } = lhs.as_ref() {
                        if field_names.contains(name.as_str())
                            && rel != decl_file
                            && !test_file
                            && !fa.in_test(*pos)
                        {
                            if let Some(n) = field_names.get(name.as_str()) {
                                incremented.insert(n);
                            }
                        }
                    }
                }
                Expr::Unary {
                    op: ast::UnOp::RefMut,
                    expr: inner,
                    ..
                } => {
                    if let Expr::Field { name, pos, .. } = inner.as_ref() {
                        if field_names.contains(name.as_str())
                            && rel != decl_file
                            && !test_file
                            && !fa.in_test(*pos)
                        {
                            if let Some(n) = field_names.get(name.as_str()) {
                                incremented.insert(n);
                            }
                        }
                    }
                }
                Expr::MethodCall {
                    name,
                    receiver,
                    pos,
                    ..
                } if name == "fetch_add" => {
                    if let Some(leaf) = leaf_name(receiver) {
                        if field_names.contains(leaf)
                            && rel != decl_file
                            && !test_file
                            && !fa.in_test(*pos)
                        {
                            if let Some(n) = field_names.get(leaf) {
                                incremented.insert(n);
                            }
                        }
                    }
                }
                // Assertion sites: any `assert*!` macro in test code
                // that mentions the field name.
                Expr::Macro {
                    segments,
                    pos,
                    args_start,
                    args_end,
                    ..
                } => {
                    let is_assert = segments.last().is_some_and(|s| s.starts_with("assert"));
                    if is_assert && (test_file || fa.in_test(*pos)) {
                        for name in &field_names {
                            if range_has_ident(fa, *args_start, *args_end, name) {
                                asserted.insert(name);
                            }
                        }
                    }
                }
                _ => {}
            }
        });
    }

    for c in &counters {
        if !incremented.contains(c.field.as_str()) {
            out.push(decl_fa.violation(
                COUNTERS,
                c.pos,
                format!(
                    "counter `{}::{}` has no non-test increment site outside {decl_file} — it \
                     can only ever read zero",
                    c.strukt, c.field
                ),
            ));
        }
        if !asserted.contains(c.field.as_str()) {
            out.push(decl_fa.violation(
                COUNTERS,
                c.pos,
                format!(
                    "counter `{}::{}` is never asserted in any test — a miscounted field would \
                     go unnoticed",
                    c.strukt, c.field
                ),
            ));
        }
    }
}

// ======================================================== wire-safety

fn check_wire(
    paths: &[String],
    quantities: &[String],
    files: &BTreeMap<String, FileAnalysis>,
    out: &mut Vec<Violation>,
) {
    for (rel, fa) in files {
        if !under(paths, rel) || is_test_file(rel) {
            continue;
        }
        ast::visit_exprs(fa.ast(), &mut |expr| match expr {
            Expr::Cast { pos, ty, .. } if int_primitive(ty) && !fa.in_test(*pos) => {
                out.push(fa.violation(
                    WIRE,
                    *pos,
                    format!(
                        "bare `as {}` cast in wire-handling code silently truncates; use \
                         `try_from`/`try_into` (or a widening `::from`) and handle overflow",
                        ty.trim()
                    ),
                ));
            }
            Expr::Binary { pos, op, lhs, rhs } => {
                let sym = match op {
                    ast::BinOp::Add => "+",
                    ast::BinOp::Mul => "*",
                    _ => return,
                };
                if fa.in_test(*pos) {
                    return;
                }
                for side in [lhs.as_ref(), rhs.as_ref()] {
                    if let Some(leaf) = leaf_name(side) {
                        if quantities.iter().any(|q| q == leaf) {
                            out.push(fa.violation(
                                WIRE,
                                *pos,
                                format!(
                                    "unchecked `{sym}` on wire quantity `{leaf}` can overflow; \
                                     use checked/saturating arithmetic"
                                ),
                            ));
                            break;
                        }
                    }
                }
            }
            _ => {}
        });
    }
}

// ===================================================== error-liveness

/// Walk every expression and pattern with the enclosing `impl` type name
/// (for `Self::Variant` resolution).
fn walk_with_impl<'a>(
    items: &'a [Item],
    impl_ty: &'a str,
    on_expr: &mut impl FnMut(&'a Expr, &'a str),
    on_pat: &mut impl FnMut(&'a Pat, &'a str),
) {
    fn expr<'a>(
        e: &'a Expr,
        ty: &'a str,
        on_expr: &mut impl FnMut(&'a Expr, &'a str),
        on_pat: &mut impl FnMut(&'a Pat, &'a str),
    ) {
        on_expr(e, ty);
        match e {
            Expr::Match { arms, .. } => {
                for arm in arms {
                    on_pat(&arm.pat, ty);
                }
            }
            Expr::LetCond { pat, .. } | Expr::For { pat, .. } => on_pat(pat, ty),
            Expr::Closure { params, .. } => {
                for p in params {
                    on_pat(p, ty);
                }
            }
            _ => {}
        }
        for child in e.children() {
            expr(child, ty, on_expr, on_pat);
        }
        for b in e.child_blocks() {
            block(b, ty, on_expr, on_pat);
        }
    }
    fn block<'a>(
        b: &'a Block,
        ty: &'a str,
        on_expr: &mut impl FnMut(&'a Expr, &'a str),
        on_pat: &mut impl FnMut(&'a Pat, &'a str),
    ) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    pat,
                    init,
                    else_block,
                    ..
                } => {
                    on_pat(pat, ty);
                    if let Some(init) = init {
                        expr(init, ty, on_expr, on_pat);
                    }
                    if let Some(eb) = else_block {
                        block(eb, ty, on_expr, on_pat);
                    }
                }
                Stmt::Expr { expr: e, .. } => expr(e, ty, on_expr, on_pat),
                Stmt::Item(item) => {
                    walk_with_impl(std::slice::from_ref(item.as_ref()), ty, on_expr, on_pat);
                }
            }
        }
    }
    for item in items {
        match item {
            Item::Fn(func) => {
                for p in &func.params {
                    on_pat(&p.pat, impl_ty);
                }
                if let Some(body) = &func.body {
                    block(body, impl_ty, on_expr, on_pat);
                }
            }
            Item::Impl(imp) => walk_with_impl(&imp.items, &imp.type_name, on_expr, on_pat),
            Item::Mod(m) => walk_with_impl(&m.items, impl_ty, on_expr, on_pat),
            _ => {}
        }
    }
}

/// Record `variant` for every adjacent `Enum::Variant` (or resolved
/// `Self::Variant`) pair in `segments`.
fn record_variant_refs(
    segments: &[String],
    enum_name: &str,
    impl_ty: &str,
    into: &mut BTreeSet<String>,
) {
    for window in segments.windows(2) {
        let head = if window[0] == "Self" {
            impl_ty
        } else {
            window[0].as_str()
        };
        if head == enum_name {
            into.insert(window[1].clone());
        }
    }
}

fn check_error_liveness(
    enum_name: &str,
    decl_file: &str,
    codec_file: &str,
    files: &BTreeMap<String, FileAnalysis>,
    out: &mut Vec<Violation>,
) {
    let config_violation = |file: &str, message: String, out: &mut Vec<Violation>| {
        out.push(Violation {
            rule: ERROR_LIVE,
            file: file.to_string(),
            line: 0,
            col: 0,
            message,
            snippet: String::new(),
        });
    };
    let (Some(decl_fa), Some(codec_fa)) = (files.get(decl_file), files.get(codec_file)) else {
        config_violation(
            decl_file,
            format!("lint.toml [[error_enum]] `{enum_name}` names a file that was not scanned"),
            out,
        );
        return;
    };
    let Some(decl) = decl_fa.find_enum(enum_name) else {
        config_violation(
            decl_file,
            format!("no `enum {enum_name}` found in {decl_file}"),
            out,
        );
        return;
    };

    // Constructions: expression-position `Enum::Variant` anywhere outside
    // tests (paths, struct literals, call callees — all reach here as
    // `Expr::Path` / `Expr::StructLit`).
    let mut constructed: BTreeSet<String> = BTreeSet::new();
    for (rel, fa) in files {
        if is_test_file(rel) {
            continue;
        }
        walk_with_impl(
            &fa.ast().items,
            "",
            &mut |expr, impl_ty| {
                let segments = match expr {
                    Expr::Path { segments, .. } | Expr::StructLit { segments, .. } => segments,
                    _ => return,
                };
                if fa.in_test(expr.pos()) {
                    return;
                }
                record_variant_refs(segments, enum_name, impl_ty, &mut constructed);
            },
            &mut |_, _| {},
        );
    }

    // Mapping arms: pattern-position `Enum::Variant` in the codec file.
    let mut mapped: BTreeSet<String> = BTreeSet::new();
    walk_with_impl(
        &codec_fa.ast().items,
        "",
        &mut |_, _| {},
        &mut |pat, impl_ty| {
            ast::visit_pat(pat, &mut |p| {
                let segments = match p {
                    Pat::Path { segments, .. }
                    | Pat::Struct { segments, .. }
                    | Pat::TupleStruct { segments, .. } => segments,
                    _ => return,
                };
                if codec_fa.in_test(p.pos()) {
                    return;
                }
                record_variant_refs(segments, enum_name, impl_ty, &mut mapped);
            });
        },
    );

    for v in &decl.variants {
        if !constructed.contains(&v.name) {
            out.push(decl_fa.violation(
                ERROR_LIVE,
                v.pos,
                format!(
                    "`{enum_name}::{}` is never constructed outside tests — a dead error variant \
                     hides the failure it was meant to report",
                    v.name
                ),
            ));
        }
        if !mapped.contains(&v.name) {
            out.push(decl_fa.violation(
                ERROR_LIVE,
                v.pos,
                format!(
                    "`{enum_name}::{}` has no mapping arm in {codec_file} — it would be silently \
                     swallowed at the wire boundary",
                    v.name
                ),
            ));
        }
    }
}
