//! `lint.toml` — the workspace invariant manifest.
//!
//! A deliberately tiny TOML subset (the workspace is offline, so no TOML
//! crate): `[section]` tables, `[[section]]` array-of-tables, and
//! `key = "string"` / `key = ["array", "of", "strings"]` pairs. Full
//! format documentation lives in `docs/INVARIANTS.md`.
//!
//! ```toml
//! [no_panic]
//! paths = ["crates/gmaa-serve/src", "crates/gmaa/src/engine.rs"]
//!
//! [[hot]]
//! file = "crates/simplex-lp/src/tableau.rs"
//! functions = ["pivot", "leaving"]   # or ["*"] for every function
//!
//! [protocol]
//! requests = "crates/gmaa-serve/src/protocol.rs"
//! dispatch = "crates/gmaa-serve/src/shard.rs"
//! counters = "crates/gmaa-serve/src/stats.rs"
//! ```

use std::fmt;

/// One hot module declaration for rule `no-alloc-in-kernel`.
#[derive(Debug, Clone, Default)]
pub struct HotModule {
    /// Workspace-relative path of the file.
    pub file: String,
    /// Function names whose bodies must not allocate; `"*"` covers every
    /// non-test function in the file.
    pub functions: Vec<String>,
}

/// The protocol-exhaustiveness wiring (rule `protocol-exhaustiveness`).
#[derive(Debug, Clone, Default)]
pub struct ProtocolConfig {
    /// File declaring the `Request` and `RequestKind` enums.
    pub requests: String,
    /// File whose dispatch must match every `Request` variant and count
    /// every `RequestKind`.
    pub dispatch: String,
    /// File declaring the per-kind counter struct (`RequestCounts`).
    pub counters: String,
}

/// The channel-topology pass configuration (rule `channel-topology`).
#[derive(Debug, Clone, Default)]
pub struct ChannelConfig {
    /// Path prefixes (or exact files) whose channel graph is analyzed.
    pub paths: Vec<String>,
}

/// The counter-accounting pass configuration (rule `counter-accounting`).
#[derive(Debug, Clone, Default)]
pub struct CountersConfig {
    /// File declaring the counter structs.
    pub file: String,
    /// Struct names whose integer fields are audited.
    pub structs: Vec<String>,
}

/// The wire-safety pass configuration (rule `wire-safety`).
#[derive(Debug, Clone, Default)]
pub struct WireConfig {
    /// Path prefixes (or exact files) where bare casts and unchecked
    /// arithmetic on quantities are banned.
    pub paths: Vec<String>,
    /// Identifier fragments that mark a value as a length/byte quantity
    /// (`len`, `bytes`, ...).
    pub quantities: Vec<String>,
}

/// One audited error enum (rule `error-liveness`).
#[derive(Debug, Clone, Default)]
pub struct ErrorEnumConfig {
    /// The enum's name.
    pub name: String,
    /// File declaring the enum.
    pub decl: String,
    /// File whose wire codec must map every variant.
    pub codec: String,
}

/// Parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Path prefixes (or exact files) where panicking constructs are
    /// forbidden outside test code.
    pub no_panic_paths: Vec<String>,
    /// Hot-module declarations.
    pub hot: Vec<HotModule>,
    /// Protocol wiring; `None` disables the cross-file rule.
    pub protocol: Option<ProtocolConfig>,
    /// Channel-topology wiring; `None` disables the pass.
    pub channel: Option<ChannelConfig>,
    /// Counter-accounting wiring; `None` disables the pass.
    pub counters: Option<CountersConfig>,
    /// Wire-safety wiring; `None` disables the pass.
    pub wire: Option<WireConfig>,
    /// Audited error enums; empty disables the pass.
    pub error_enums: Vec<ErrorEnumConfig>,
}

/// A manifest syntax error with its line.
#[derive(Debug)]
pub struct ManifestError {
    /// 1-based line in `lint.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ManifestError {}

fn err(line: usize, message: impl Into<String>) -> ManifestError {
    ManifestError {
        line,
        message: message.into(),
    }
}

/// Strip a `# comment` that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `"quoted"` at the start of `s`, returning (value, rest).
fn parse_string(s: &str, line_no: usize) -> Result<(String, &str), ManifestError> {
    let s = s.trim_start();
    let Some(rest) = s.strip_prefix('"') else {
        return Err(err(line_no, format!("expected a quoted string at `{s}`")));
    };
    match rest.find('"') {
        Some(end) => Ok((rest[..end].to_string(), &rest[end + 1..])),
        None => Err(err(line_no, "unterminated string")),
    }
}

fn parse_value(s: &str, line_no: usize) -> Result<Vec<String>, ManifestError> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('[') {
        let Some(body) = body.trim_end().strip_suffix(']') else {
            return Err(err(line_no, "unterminated array (arrays must be one line)"));
        };
        let mut out = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let (value, after) = parse_string(rest, line_no)?;
            out.push(value);
            rest = after.trim_start().trim_start_matches(',').trim_start();
        }
        Ok(out)
    } else {
        let (value, after) = parse_string(s, line_no)?;
        if !after.trim().is_empty() {
            return Err(err(line_no, format!("trailing input `{}`", after.trim())));
        }
        Ok(vec![value])
    }
}

/// Parse a manifest from source text.
pub fn parse(src: &str) -> Result<Manifest, ManifestError> {
    let mut manifest = Manifest::default();
    // Which table the current `key = value` lines land in.
    enum Section {
        None,
        NoPanic,
        Hot,
        Protocol,
        Channel,
        Counters,
        Wire,
        ErrorEnum,
    }
    let mut section = Section::None;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            match header.trim() {
                "hot" => {
                    manifest.hot.push(HotModule::default());
                    section = Section::Hot;
                }
                "error_enum" => {
                    manifest.error_enums.push(ErrorEnumConfig::default());
                    section = Section::ErrorEnum;
                }
                other => return Err(err(line_no, format!("unknown table `[[{other}]]`"))),
            }
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = match header.trim() {
                "no_panic" => Section::NoPanic,
                "protocol" => {
                    manifest
                        .protocol
                        .get_or_insert_with(ProtocolConfig::default);
                    Section::Protocol
                }
                "channel" => {
                    manifest.channel.get_or_insert_with(ChannelConfig::default);
                    Section::Channel
                }
                "counters" => {
                    manifest
                        .counters
                        .get_or_insert_with(CountersConfig::default);
                    Section::Counters
                }
                "wire" => {
                    manifest.wire.get_or_insert_with(WireConfig::default);
                    Section::Wire
                }
                other => return Err(err(line_no, format!("unknown table `[{other}]`"))),
            };
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            let values = parse_value(value, line_no)?;
            let first = || values.first().cloned().unwrap_or_default();
            match (&section, key) {
                (Section::NoPanic, "paths") => manifest.no_panic_paths = values,
                (Section::Hot, "file") => match manifest.hot.last_mut() {
                    Some(hot) => hot.file = first(),
                    None => return Err(err(line_no, "`file` outside a [[hot]] table")),
                },
                (Section::Hot, "functions") => match manifest.hot.last_mut() {
                    Some(hot) => hot.functions = values,
                    None => return Err(err(line_no, "`functions` outside a [[hot]] table")),
                },
                (Section::Protocol, "requests" | "dispatch" | "counters") => {
                    // The [protocol] header always inserts the config first.
                    if let Some(p) = manifest.protocol.as_mut() {
                        match key {
                            "requests" => p.requests = first(),
                            "dispatch" => p.dispatch = first(),
                            _ => p.counters = first(),
                        }
                    }
                }
                (Section::Channel, "paths") => {
                    if let Some(c) = manifest.channel.as_mut() {
                        c.paths = values;
                    }
                }
                (Section::Counters, "file") => {
                    if let Some(c) = manifest.counters.as_mut() {
                        c.file = first();
                    }
                }
                (Section::Counters, "structs") => {
                    if let Some(c) = manifest.counters.as_mut() {
                        c.structs = values;
                    }
                }
                (Section::Wire, "paths") => {
                    if let Some(w) = manifest.wire.as_mut() {
                        w.paths = values;
                    }
                }
                (Section::Wire, "quantities") => {
                    if let Some(w) = manifest.wire.as_mut() {
                        w.quantities = values;
                    }
                }
                (Section::ErrorEnum, "name" | "decl" | "codec") => {
                    match manifest.error_enums.last_mut() {
                        Some(e) => match key {
                            "name" => e.name = first(),
                            "decl" => e.decl = first(),
                            _ => e.codec = first(),
                        },
                        None => {
                            return Err(err(line_no, "key outside an [[error_enum]] table"));
                        }
                    }
                }
                _ => return Err(err(line_no, format!("unknown key `{key}` here"))),
            }
        } else {
            return Err(err(line_no, format!("unparseable line `{line}`")));
        }
    }
    for hot in &manifest.hot {
        if hot.file.is_empty() {
            return Err(err(0, "[[hot]] table without a `file` key"));
        }
    }
    for e in &manifest.error_enums {
        if e.name.is_empty() || e.decl.is_empty() || e.codec.is_empty() {
            return Err(err(
                0,
                "[[error_enum]] tables need `name`, `decl` and `codec` keys",
            ));
        }
    }
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let m = parse(
            r#"
# comment
[no_panic]
paths = ["a/src", "b/engine.rs"]   # trailing comment

[[hot]]
file = "kernel.rs"
functions = ["*"]

[[hot]]
file = "sweep.rs"
functions = ["gather", "pour"]

[protocol]
requests = "protocol.rs"
dispatch = "shard.rs"
counters = "stats.rs"
"#,
        )
        .expect("parses");
        assert_eq!(m.no_panic_paths, ["a/src", "b/engine.rs"]);
        assert_eq!(m.hot.len(), 2);
        assert_eq!(m.hot[1].functions, ["gather", "pour"]);
        let p = m.protocol.expect("protocol present");
        assert_eq!(p.dispatch, "shard.rs");
    }

    #[test]
    fn rejects_unknown_tables_and_hotless_files() {
        assert!(parse("[mystery]\n").is_err());
        assert!(parse("[[hot]]\nfunctions = [\"*\"]\n").is_err());
        assert!(parse("stray line\n").is_err());
    }
}
