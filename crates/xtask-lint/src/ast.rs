//! A lightweight recursive-descent parser over the token stream of
//! [`crate::rules::FileAnalysis`], producing the syntax tree the
//! flow-aware passes walk.
//!
//! The tree is deliberately partial: it models exactly what the rules
//! need — items with names and spans, function signatures with
//! parameter/return *type text*, block and expression structure deep
//! enough for call / method / field / cast / path extraction, and
//! patterns deep enough to tell a bound variant field from an ignored
//! one. Anything it cannot parse degrades to [`Expr::Unknown`] /
//! [`Pat::Unknown`] and the cursor keeps advancing, so a novel
//! construct can never panic the linter or stall the parse.
//!
//! Every node carries a `pos`: the index of its first (or most
//! characteristic) token in the file's *code-token* stream, the same
//! position space `FileAnalysis` uses for line/column lookup, test-region
//! masks and allow markers — so AST-driven rules report violations
//! through the same machinery as the token-driven ones.
//!
//! Types are captured as *text* (tokens joined with single spaces), not
//! parsed: the passes only ever ask "is this `u64`?" or "does this
//! mention `Sender`?", and text answers both without a type grammar.

use crate::rules::FileAnalysis;

/// A parsed source file: its top-level items, in source order.
#[derive(Debug)]
pub struct File {
    /// Top-level items (functions, structs, enums, impls, modules, ...).
    pub items: Vec<Item>,
}

/// One item. Items the passes never inspect parse as [`Item::Other`].
#[derive(Debug)]
pub enum Item {
    /// A `fn` with its signature and (for non-trait-decl fns) body.
    Fn(FnItem),
    /// A `struct` with named-field declarations.
    Struct(StructItem),
    /// An `enum` with its variants.
    Enum(EnumItem),
    /// An `impl` block; `type_name` is the self type's main identifier.
    Impl(ImplItem),
    /// An inline `mod name { ... }`.
    Mod(ModItem),
    /// Anything else (`use`, `const`, `type`, out-of-line `mod`, ...).
    Other,
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Code-token position of the name.
    pub pos: usize,
    /// Parameters, in order (receivers like `&mut self` included).
    pub params: Vec<Param>,
    /// Return type text (empty for `()`-returning functions).
    pub ret: String,
    /// The body, when present (`None` for trait method declarations).
    pub body: Option<Block>,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// The parameter pattern (usually a plain binding).
    pub pat: Pat,
    /// The declared type, as text (empty for `self` receivers).
    pub ty: String,
}

/// A struct item with its field declarations.
#[derive(Debug)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// Code-token position of the name.
    pub pos: usize,
    /// Field declarations, in order (tuple fields are named "0", "1", ...).
    pub fields: Vec<FieldDef>,
}

/// One struct or enum-variant field declaration.
#[derive(Debug)]
pub struct FieldDef {
    /// The field's name.
    pub name: String,
    /// The field's type, as text.
    pub ty: String,
    /// Code-token position of the name (or the type, for tuple fields).
    pub pos: usize,
}

/// An enum item with its variants.
#[derive(Debug)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// Code-token position of the name.
    pub pos: usize,
    /// The variants, in order.
    pub variants: Vec<Variant>,
}

/// One enum variant.
#[derive(Debug)]
pub struct Variant {
    /// The variant's name.
    pub name: String,
    /// Code-token position of the name.
    pub pos: usize,
    /// The variant's fields (empty for unit variants; tuple fields are
    /// named "0", "1", ...).
    pub fields: Vec<FieldDef>,
}

/// An impl block.
#[derive(Debug)]
pub struct ImplItem {
    /// The self type's main identifier (`StoreError` for
    /// `impl fmt::Display for StoreError`, `Shard` for `impl Shard`).
    pub type_name: String,
    /// The items inside the block (methods, assoc consts, ...).
    pub items: Vec<Item>,
}

/// An inline module.
#[derive(Debug)]
pub struct ModItem {
    /// The module's name.
    pub name: String,
    /// The items inside the module.
    pub items: Vec<Item>,
}

/// A `{ ... }` block with its statements.
#[derive(Debug)]
pub struct Block {
    /// Code-token position of the opening `{`.
    pub open: usize,
    /// Code-token position of the matching `}`.
    pub close: usize,
    /// The statements, in order (the tail expression is a statement
    /// with `semi: false`).
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let PAT[: TY] [= INIT] [else BLOCK];`
    Let {
        /// Code-token position of the `let`.
        pos: usize,
        /// The bound pattern.
        pat: Pat,
        /// The declared type text, if annotated.
        ty: Option<String>,
        /// The initializer, if present.
        init: Option<Expr>,
        /// The `else` diverging block of a let-else, if present.
        else_block: Option<Block>,
    },
    /// An expression statement; `semi` is false for the tail expression.
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether the statement ended with `;`.
        semi: bool,
    },
    /// A nested item (fn, struct, use, ... inside a block).
    Item(Box<Item>),
}

/// A binary operator (only the ones the passes distinguish).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<` / `>>`
    Shift,
    /// `&` / `|` / `^`
    Bit,
    /// `==` `!=` `<` `>` `<=` `>=`
    Cmp,
    /// `&&` / `||`
    Logic,
}

/// A prefix unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `&` / `&&` (shared borrow)
    Ref,
    /// `&mut`
    RefMut,
    /// `*` (deref), `-` (neg), `!` (not)
    Other,
}

/// One expression. Unparseable constructs become [`Expr::Unknown`].
#[derive(Debug)]
pub enum Expr {
    /// A (possibly qualified) path: `x`, `Vec::new`, `Self::Io`.
    Path {
        /// Code-token position of the first segment.
        pos: usize,
        /// The `::`-separated segments.
        segments: Vec<String>,
    },
    /// A literal (number, string, char, bool-by-path parses as Path).
    Lit {
        /// Code-token position of the literal.
        pos: usize,
    },
    /// A call: `callee(args)`.
    Call {
        /// Code-token position of the opening `(`.
        pos: usize,
        /// The callee expression.
        callee: Box<Expr>,
        /// The arguments.
        args: Vec<Expr>,
    },
    /// A method call: `receiver.name(args)`.
    MethodCall {
        /// Code-token position of the method name.
        pos: usize,
        /// The receiver expression.
        receiver: Box<Expr>,
        /// The method name.
        name: String,
        /// The arguments.
        args: Vec<Expr>,
    },
    /// A field access: `base.name`.
    Field {
        /// Code-token position of the field name.
        pos: usize,
        /// The base expression.
        base: Box<Expr>,
        /// The field name (tuple fields: "0", "1", ...).
        name: String,
    },
    /// An index expression: `base[index]`.
    Index {
        /// Code-token position of the opening `[`.
        pos: usize,
        /// The indexed expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// An `as` cast.
    Cast {
        /// Code-token position of the `as`.
        pos: usize,
        /// The cast operand.
        expr: Box<Expr>,
        /// The target type, as text.
        ty: String,
    },
    /// A prefix unary expression.
    Unary {
        /// Code-token position of the operator.
        pos: usize,
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary expression.
    Binary {
        /// Code-token position of the operator.
        pos: usize,
        /// The operator class.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// An assignment `lhs = rhs` or compound assignment `lhs op= rhs`.
    Assign {
        /// Code-token position of the `=`/operator.
        pos: usize,
        /// The compound operator (`None` for plain `=`).
        op: Option<BinOp>,
        /// The assignment target.
        lhs: Box<Expr>,
        /// The assigned value.
        rhs: Box<Expr>,
    },
    /// A macro invocation `path!(...)`; args are parsed best-effort as
    /// a comma-separated expression list, and the raw code-token range
    /// of the delimited arguments is retained for token-level scans.
    Macro {
        /// Code-token position of the macro name's last segment.
        pos: usize,
        /// The macro path segments.
        segments: Vec<String>,
        /// Best-effort parsed arguments.
        args: Vec<Expr>,
        /// First code-token position inside the delimiters.
        args_start: usize,
        /// One past the last code-token position inside the delimiters.
        args_end: usize,
    },
    /// A struct literal `Path { field: expr, .. }`.
    StructLit {
        /// Code-token position of the path's first segment.
        pos: usize,
        /// The struct path segments.
        segments: Vec<String>,
        /// The field initializers (shorthand fields have `None`).
        fields: Vec<(String, Option<Expr>)>,
        /// The `..base` functional-update expression, if present.
        rest: Option<Box<Expr>>,
    },
    /// A block expression.
    Block(Block),
    /// An `if` (or `if let`) expression.
    If {
        /// Code-token position of the `if`.
        pos: usize,
        /// The condition (a [`Expr::LetCond`] for `if let`).
        cond: Box<Expr>,
        /// The then-block.
        then: Block,
        /// The else branch (`Block` or nested `If`), if present.
        else_: Option<Box<Expr>>,
    },
    /// A `let PAT = expr` condition inside `if`/`while`.
    LetCond {
        /// Code-token position of the `let`.
        pos: usize,
        /// The matched pattern.
        pat: Pat,
        /// The scrutinee.
        expr: Box<Expr>,
    },
    /// A `match` expression.
    Match {
        /// Code-token position of the `match`.
        pos: usize,
        /// The scrutinee.
        scrutinee: Box<Expr>,
        /// The arms, in order.
        arms: Vec<Arm>,
    },
    /// A `while` / `while let` loop.
    While {
        /// Code-token position of the `while`.
        pos: usize,
        /// The condition.
        cond: Box<Expr>,
        /// The body.
        body: Block,
    },
    /// A bare `loop`.
    Loop {
        /// Code-token position of the `loop`.
        pos: usize,
        /// The body.
        body: Block,
    },
    /// A `for PAT in ITER { .. }` loop.
    For {
        /// Code-token position of the `for`.
        pos: usize,
        /// The loop pattern.
        pat: Pat,
        /// The iterated expression.
        iter: Box<Expr>,
        /// The body.
        body: Block,
    },
    /// A closure.
    Closure {
        /// Code-token position of the opening `|`.
        pos: usize,
        /// The parameter patterns.
        params: Vec<Pat>,
        /// The body expression.
        body: Box<Expr>,
    },
    /// `return` / `break` / `continue`, with an optional value.
    Jump {
        /// Code-token position of the keyword.
        pos: usize,
        /// The carried value, if any.
        value: Option<Box<Expr>>,
    },
    /// A range `lo..hi` / `lo..=hi` (either side optional).
    Range {
        /// Code-token position of the `..`.
        pos: usize,
        /// The lower bound, if present.
        lo: Option<Box<Expr>>,
        /// The upper bound, if present.
        hi: Option<Box<Expr>>,
    },
    /// A tuple `(a, b)` / unit `()`.
    Tuple {
        /// Code-token position of the opening `(`.
        pos: usize,
        /// The elements.
        elems: Vec<Expr>,
    },
    /// An array `[a, b]` or repeat `[x; n]`.
    Array {
        /// Code-token position of the opening `[`.
        pos: usize,
        /// The elements (for `[x; n]`: the element then the length).
        elems: Vec<Expr>,
    },
    /// Anything the parser could not model; one token wide.
    Unknown {
        /// Code-token position of the unparsed token.
        pos: usize,
    },
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Code-token position of the pattern's first token.
    pub pos: usize,
    /// The arm pattern (or-patterns become [`Pat::Or`]).
    pub pat: Pat,
    /// The `if` guard, if present.
    pub guard: Option<Expr>,
    /// The arm body.
    pub body: Expr,
}

/// One pattern. Unparseable constructs become [`Pat::Unknown`].
#[derive(Debug)]
pub enum Pat {
    /// A path pattern: a unit variant or const (`Command::Stop`).
    Path {
        /// Code-token position of the first segment.
        pos: usize,
        /// The `::`-separated segments.
        segments: Vec<String>,
    },
    /// A struct pattern `Path { field: pat, field2, .. }`.
    Struct {
        /// Code-token position of the path's first segment.
        pos: usize,
        /// The struct/variant path segments.
        segments: Vec<String>,
        /// Fields: `(name, sub-pattern)`; shorthand bindings have `None`.
        fields: Vec<(String, Option<Pat>)>,
        /// Whether the pattern ends with `..`.
        rest: bool,
    },
    /// A tuple-struct pattern `Path(a, b)`.
    TupleStruct {
        /// Code-token position of the path's first segment.
        pos: usize,
        /// The variant path segments.
        segments: Vec<String>,
        /// The element patterns.
        elems: Vec<Pat>,
    },
    /// A tuple pattern `(a, b)`.
    Tuple {
        /// Code-token position of the opening `(`.
        pos: usize,
        /// The element patterns.
        elems: Vec<Pat>,
    },
    /// A slice pattern `[a, b, ..]`.
    Slice {
        /// Code-token position of the opening `[`.
        pos: usize,
        /// The element patterns.
        elems: Vec<Pat>,
    },
    /// A binding, optionally with an `@` sub-pattern.
    Binding {
        /// Code-token position of the name.
        pos: usize,
        /// The bound name.
        name: String,
        /// The `@` sub-pattern, if present.
        sub: Option<Box<Pat>>,
    },
    /// `_`
    Wild {
        /// Code-token position of the `_`.
        pos: usize,
    },
    /// `..`
    Rest {
        /// Code-token position of the `..`.
        pos: usize,
    },
    /// A literal pattern (including literal ranges).
    Lit {
        /// Code-token position of the literal.
        pos: usize,
    },
    /// An or-pattern `A | B`.
    Or {
        /// Code-token position of the first alternative.
        pos: usize,
        /// The alternatives.
        alts: Vec<Pat>,
    },
    /// Anything the parser could not model; one token wide.
    Unknown {
        /// Code-token position of the unparsed token.
        pos: usize,
    },
}

impl Expr {
    /// The expression's anchor position in the code-token stream.
    pub fn pos(&self) -> usize {
        match self {
            Expr::Path { pos, .. }
            | Expr::Lit { pos }
            | Expr::Call { pos, .. }
            | Expr::MethodCall { pos, .. }
            | Expr::Field { pos, .. }
            | Expr::Index { pos, .. }
            | Expr::Cast { pos, .. }
            | Expr::Unary { pos, .. }
            | Expr::Binary { pos, .. }
            | Expr::Assign { pos, .. }
            | Expr::Macro { pos, .. }
            | Expr::StructLit { pos, .. }
            | Expr::If { pos, .. }
            | Expr::LetCond { pos, .. }
            | Expr::Match { pos, .. }
            | Expr::While { pos, .. }
            | Expr::Loop { pos, .. }
            | Expr::For { pos, .. }
            | Expr::Closure { pos, .. }
            | Expr::Jump { pos, .. }
            | Expr::Range { pos, .. }
            | Expr::Tuple { pos, .. }
            | Expr::Array { pos, .. }
            | Expr::Unknown { pos } => *pos,
            Expr::Block(b) => b.open,
        }
    }

    /// The expression's direct child expressions, in source order.
    pub fn children(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        match self {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown { .. } => {}
            Expr::Call { callee, args, .. } => {
                out.push(callee.as_ref());
                out.extend(args.iter());
            }
            Expr::MethodCall { receiver, args, .. } => {
                out.push(receiver.as_ref());
                out.extend(args.iter());
            }
            Expr::Field { base, .. } => out.push(base.as_ref()),
            Expr::Index { base, index, .. } => {
                out.push(base.as_ref());
                out.push(index.as_ref());
            }
            Expr::Cast { expr, .. } | Expr::Unary { expr, .. } => out.push(expr.as_ref()),
            Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
                out.push(lhs.as_ref());
                out.push(rhs.as_ref());
            }
            Expr::Macro { args, .. } => out.extend(args.iter()),
            Expr::StructLit { fields, rest, .. } => {
                out.extend(fields.iter().filter_map(|(_, e)| e.as_ref()));
                if let Some(rest) = rest {
                    out.push(rest.as_ref());
                }
            }
            Expr::Block(_) => {}
            Expr::If { cond, else_, .. } => {
                out.push(cond.as_ref());
                if let Some(e) = else_ {
                    out.push(e.as_ref());
                }
            }
            Expr::LetCond { expr, .. } => out.push(expr.as_ref()),
            Expr::Match {
                scrutinee, arms, ..
            } => {
                out.push(scrutinee.as_ref());
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        out.push(g);
                    }
                    out.push(&arm.body);
                }
            }
            Expr::While { cond, .. } => out.push(cond.as_ref()),
            Expr::Loop { .. } => {}
            Expr::For { iter, .. } => out.push(iter.as_ref()),
            Expr::Closure { body, .. } => out.push(body.as_ref()),
            Expr::Jump { value, .. } => {
                if let Some(v) = value {
                    out.push(v.as_ref());
                }
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(lo) = lo {
                    out.push(lo.as_ref());
                }
                if let Some(hi) = hi {
                    out.push(hi.as_ref());
                }
            }
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => out.extend(elems.iter()),
        }
        out
    }

    /// The expression's direct child blocks, in source order.
    pub fn child_blocks(&self) -> Vec<&Block> {
        match self {
            Expr::Block(b) => vec![b],
            Expr::If { then, .. } => vec![then],
            Expr::While { body, .. } | Expr::Loop { body, .. } | Expr::For { body, .. } => {
                vec![body]
            }
            _ => Vec::new(),
        }
    }
}

impl Pat {
    /// The pattern's anchor position in the code-token stream.
    pub fn pos(&self) -> usize {
        match self {
            Pat::Path { pos, .. }
            | Pat::Struct { pos, .. }
            | Pat::TupleStruct { pos, .. }
            | Pat::Tuple { pos, .. }
            | Pat::Slice { pos, .. }
            | Pat::Binding { pos, .. }
            | Pat::Wild { pos }
            | Pat::Rest { pos }
            | Pat::Lit { pos }
            | Pat::Or { pos, .. }
            | Pat::Unknown { pos } => *pos,
        }
    }

    /// Every name this pattern binds, in source order.
    pub fn bindings(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_bindings(&mut out);
        out
    }

    fn collect_bindings<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Pat::Binding { name, sub, .. } => {
                out.push(name.as_str());
                if let Some(sub) = sub {
                    sub.collect_bindings(out);
                }
            }
            Pat::Struct { fields, .. } => {
                for (name, sub) in fields {
                    match sub {
                        Some(p) => p.collect_bindings(out),
                        None => out.push(name.as_str()),
                    }
                }
            }
            Pat::TupleStruct { elems, .. }
            | Pat::Tuple { elems, .. }
            | Pat::Slice { elems, .. } => {
                for p in elems {
                    p.collect_bindings(out);
                }
            }
            Pat::Or { alts, .. } => {
                for p in alts {
                    p.collect_bindings(out);
                }
            }
            _ => {}
        }
    }
}

/// Parse a file's code-token stream into a [`File`].
pub fn parse(fa: &FileAnalysis) -> File {
    let mut parser = Parser {
        fa,
        pos: 0,
        no_struct: false,
    };
    let end = fa.code_len();
    File {
        items: parser.parse_items(end),
    }
}

/// Keywords that can never be an expression-leading path segment.
const EXPR_STOP_KEYWORDS: &[&str] = &[
    "as", "else", "in", "where", "pub", "fn", "struct", "enum", "impl", "trait", "mod", "use",
    "const", "static", "type", "let",
];

struct Parser<'a> {
    fa: &'a FileAnalysis,
    pos: usize,
    /// Struct literals are forbidden in this position (condition /
    /// scrutinee / for-iterator).
    no_struct: bool,
}

impl<'a> Parser<'a> {
    // ---------------------------------------------------------- utilities

    fn at(&self, c: char) -> bool {
        self.fa.is_punct(self.pos, c)
    }

    fn at_n(&self, offset: usize, c: char) -> bool {
        self.fa.is_punct(self.pos + offset, c)
    }

    fn kw(&self, name: &str) -> bool {
        self.fa.is_ident(self.pos, name)
    }

    fn ident(&self) -> Option<&'a str> {
        self.fa.ident_at(self.pos)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn eat(&mut self, c: char) -> bool {
        if self.at(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, name: &str) -> bool {
        if self.kw(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// `::` at the cursor?
    fn at_coloncolon(&self) -> bool {
        self.at(':') && self.at_n(1, ':')
    }

    /// Skip any `#[...]` / `#![...]` attributes at the cursor.
    fn skip_attrs(&mut self) {
        while self.at('#') {
            let mut probe = self.pos + 1;
            if self.fa.is_punct(probe, '!') {
                probe += 1;
            }
            if !self.fa.is_punct(probe, '[') {
                return;
            }
            let mut depth = 0usize;
            self.pos = probe;
            while self.pos < self.fa.code_len() {
                if self.at('[') {
                    depth += 1;
                } else if self.at(']') {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        break;
                    }
                }
                self.bump();
            }
        }
    }

    /// Skip a balanced `<...>` generics group starting at `<`.
    fn skip_angles(&mut self) {
        if !self.at('<') {
            return;
        }
        let mut depth = 0i32;
        while self.pos < self.fa.code_len() {
            if self.at('<') {
                depth += 1;
            } else if self.at('>') {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            } else if self.at('(') || self.at('{') {
                // A parenthesis inside generics means we mis-identified
                // a comparison; bail without consuming further.
                return;
            }
            self.bump();
        }
    }

    /// Skip to the token after the `)`/`]`/`}` matching the opener at
    /// the cursor.
    fn skip_balanced(&mut self) {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        let start = self.pos;
        while self.pos < self.fa.code_len() {
            if self.at('(') {
                paren += 1;
            } else if self.at(')') {
                paren -= 1;
            } else if self.at('[') {
                bracket += 1;
            } else if self.at(']') {
                bracket -= 1;
            } else if self.at('{') {
                brace += 1;
            } else if self.at('}') {
                brace -= 1;
            }
            self.bump();
            if paren <= 0 && bracket <= 0 && brace <= 0 && self.pos > start {
                return;
            }
        }
    }

    /// Collect type text from the cursor up to a depth-0 terminator
    /// (`,` `)` `;` `{` `}` `=` `]` or a depth-0 `>`), consuming it.
    /// `->` and `=>`-free; `->` inside fn-pointer types is kept.
    fn type_text(&mut self) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while self.pos < self.fa.code_len() {
            if self.at('<') {
                angle += 1;
            } else if self.at('>') {
                if angle == 0 {
                    break;
                }
                angle -= 1;
            } else if self.at('(') {
                paren += 1;
            } else if self.at(')') {
                if paren == 0 {
                    break;
                }
                paren -= 1;
            } else if self.at('[') {
                bracket += 1;
            } else if self.at(']') {
                if bracket == 0 {
                    break;
                }
                bracket -= 1;
            } else if angle == 0 && paren == 0 && bracket == 0 {
                if self.at(',') || self.at(';') || self.at('{') || self.at('}') {
                    break;
                }
                if self.at('-') && self.at_n(1, '>') {
                    // fn-pointer return arrow: keep it and continue.
                    parts.push("->".to_string());
                    self.bump();
                    self.bump();
                    continue;
                }
                if self.at('=') {
                    break;
                }
                if self.kw("where") || self.kw("else") {
                    break;
                }
            }
            parts.push(self.fa.text(self.pos).to_string());
            self.bump();
        }
        parts.join(" ")
    }

    // -------------------------------------------------------------- items

    fn parse_items(&mut self, end: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < end {
            if self.at('}') {
                break;
            }
            let before = self.pos;
            if let Some(item) = self.parse_item(end) {
                items.push(item);
            }
            if self.pos == before {
                self.bump(); // guarantee progress on unknown constructs
            }
        }
        items
    }

    /// Parse one item at the cursor, if one starts here.
    fn parse_item(&mut self, end: usize) -> Option<Item> {
        self.skip_attrs();
        if self.pos >= end {
            return None;
        }
        // Visibility and fn qualifiers.
        if self.kw("pub") {
            self.bump();
            if self.at('(') {
                self.skip_balanced();
            }
        }
        while self.kw("async") || self.kw("unsafe") || self.kw("default") {
            self.bump();
        }
        if self.kw("extern") {
            self.bump();
            // `extern "C" fn` / `extern crate x;` / `extern "C" { ... }`
            if matches!(self.ident(), Some("crate")) {
                self.skip_to_semi();
                return Some(Item::Other);
            }
            self.bump(); // the ABI string
            if self.at('{') {
                self.skip_balanced();
                return Some(Item::Other);
            }
        }
        if self.kw("const") && self.fa.is_ident(self.pos + 1, "fn") {
            self.bump();
        }
        if self.kw("fn") {
            return Some(Item::Fn(self.parse_fn()));
        }
        if self.kw("struct") {
            return Some(self.parse_struct());
        }
        if self.kw("enum") {
            return Some(self.parse_enum());
        }
        if self.kw("impl") {
            return Some(self.parse_impl());
        }
        if self.kw("trait") {
            return Some(self.parse_trait());
        }
        if self.kw("mod") {
            return Some(self.parse_mod());
        }
        if self.kw("use") || self.kw("type") || self.kw("static") || self.kw("const") {
            self.skip_to_semi();
            return Some(Item::Other);
        }
        if self.kw("union") {
            // Treat like an opaque item: skip to its body and over it.
            while self.pos < self.fa.code_len() && !self.at('{') && !self.at(';') {
                self.bump();
            }
            if self.at('{') {
                self.skip_balanced();
            } else {
                self.eat(';');
            }
            return Some(Item::Other);
        }
        if matches!(self.ident(), Some("macro_rules")) {
            self.bump();
            self.eat('!');
            self.bump(); // name
            if self.at('{') || self.at('(') || self.at('[') {
                self.skip_balanced();
            }
            return Some(Item::Other);
        }
        None
    }

    /// Skip to just past the next `;` at paren/bracket/brace depth 0.
    fn skip_to_semi(&mut self) {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        while self.pos < self.fa.code_len() {
            if self.at('(') {
                paren += 1;
            } else if self.at(')') {
                paren -= 1;
            } else if self.at('[') {
                bracket += 1;
            } else if self.at('{') {
                brace += 1;
            } else if self.at('}') {
                if brace == 0 {
                    return; // ran off the enclosing block: stop before it
                }
                brace -= 1;
            } else if self.at(']') {
                bracket -= 1;
            } else if self.at(';') && paren == 0 && bracket == 0 && brace == 0 {
                self.bump();
                return;
            }
            self.bump();
        }
    }

    fn parse_fn(&mut self) -> FnItem {
        self.bump(); // `fn`
        let pos = self.pos;
        let name = self.ident().unwrap_or("").to_string();
        self.bump();
        if self.at('<') {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.eat('(') {
            loop {
                self.skip_attrs();
                if self.at(')') || self.pos >= self.fa.code_len() {
                    self.eat(')');
                    break;
                }
                let pat = self.parse_pat();
                let ty = if self.at(':') && !self.at_n(1, ':') {
                    self.bump();
                    self.type_text()
                } else {
                    String::new()
                };
                params.push(Param { pat, ty });
                if !self.eat(',') {
                    self.eat(')');
                    break;
                }
            }
        }
        let ret = if self.at('-') && self.at_n(1, '>') {
            self.bump();
            self.bump();
            self.type_text()
        } else {
            String::new()
        };
        if self.kw("where") {
            // Skip the where clause: everything until the body `{` or a
            // declaration-terminating `;` at bracket depth 0.
            let mut angle = 0i32;
            while self.pos < self.fa.code_len() {
                if self.at('<') {
                    angle += 1;
                } else if self.at('>') {
                    angle -= 1;
                } else if angle <= 0 && (self.at('{') || self.at(';')) {
                    break;
                }
                self.bump();
            }
        }
        let body = if self.at('{') {
            Some(self.parse_block())
        } else {
            self.eat(';');
            None
        };
        FnItem {
            name,
            pos,
            params,
            ret,
            body,
        }
    }

    fn parse_struct(&mut self) -> Item {
        self.bump(); // `struct`
        let pos = self.pos;
        let name = self.ident().unwrap_or("").to_string();
        self.bump();
        if self.at('<') {
            self.skip_angles();
        }
        let mut fields = Vec::new();
        if self.at('(') {
            // Tuple struct: fields named "0", "1", ...
            self.bump();
            let mut index = 0usize;
            while self.pos < self.fa.code_len() && !self.at(')') {
                self.skip_attrs();
                if self.kw("pub") {
                    self.bump();
                    if self.at('(') {
                        self.skip_balanced();
                    }
                }
                let fpos = self.pos;
                let ty = self.type_text();
                if !ty.is_empty() {
                    fields.push(FieldDef {
                        name: index.to_string(),
                        ty,
                        pos: fpos,
                    });
                    index += 1;
                }
                if !self.eat(',') {
                    break;
                }
            }
            self.eat(')');
            self.skip_to_semi();
        } else if self.kw("where") {
            while self.pos < self.fa.code_len() && !self.at('{') && !self.at(';') {
                self.bump();
            }
        }
        if self.at('{') {
            self.bump();
            while self.pos < self.fa.code_len() && !self.at('}') {
                self.skip_attrs();
                if self.kw("pub") {
                    self.bump();
                    if self.at('(') {
                        self.skip_balanced();
                    }
                }
                let fpos = self.pos;
                let Some(fname) = self.ident() else {
                    self.bump();
                    continue;
                };
                let fname = fname.to_string();
                self.bump();
                if !self.eat(':') {
                    continue;
                }
                let ty = self.type_text();
                fields.push(FieldDef {
                    name: fname,
                    ty,
                    pos: fpos,
                });
                self.eat(',');
            }
            self.eat('}');
        } else {
            self.eat(';');
        }
        Item::Struct(StructItem { name, pos, fields })
    }

    fn parse_enum(&mut self) -> Item {
        self.bump(); // `enum`
        let pos = self.pos;
        let name = self.ident().unwrap_or("").to_string();
        self.bump();
        if self.at('<') {
            self.skip_angles();
        }
        while self.pos < self.fa.code_len() && !self.at('{') && !self.at(';') {
            self.bump(); // where clauses
        }
        let mut variants = Vec::new();
        if self.eat('{') {
            while self.pos < self.fa.code_len() && !self.at('}') {
                self.skip_attrs();
                let vpos = self.pos;
                let Some(vname) = self.ident() else {
                    self.bump();
                    continue;
                };
                let vname = vname.to_string();
                self.bump();
                let mut fields = Vec::new();
                if self.at('(') {
                    self.bump();
                    let mut index = 0usize;
                    while self.pos < self.fa.code_len() && !self.at(')') {
                        self.skip_attrs();
                        let fpos = self.pos;
                        let ty = self.type_text();
                        if !ty.is_empty() {
                            fields.push(FieldDef {
                                name: index.to_string(),
                                ty,
                                pos: fpos,
                            });
                            index += 1;
                        }
                        if !self.eat(',') {
                            break;
                        }
                    }
                    self.eat(')');
                } else if self.at('{') {
                    self.bump();
                    while self.pos < self.fa.code_len() && !self.at('}') {
                        self.skip_attrs();
                        let fpos = self.pos;
                        let Some(fname) = self.ident() else {
                            self.bump();
                            continue;
                        };
                        let fname = fname.to_string();
                        self.bump();
                        if !self.eat(':') {
                            continue;
                        }
                        let ty = self.type_text();
                        fields.push(FieldDef {
                            name: fname,
                            ty,
                            pos: fpos,
                        });
                        self.eat(',');
                    }
                    self.eat('}');
                }
                if self.at('=') && !self.at_n(1, '=') {
                    // Explicit discriminant: skip its expression.
                    self.bump();
                    let _ = self.parse_expr();
                }
                variants.push(Variant {
                    name: vname,
                    pos: vpos,
                    fields,
                });
                self.eat(',');
            }
            self.eat('}');
        }
        Item::Enum(EnumItem {
            name,
            pos,
            variants,
        })
    }

    fn parse_impl(&mut self) -> Item {
        self.bump(); // `impl`
        if self.at('<') {
            self.skip_angles();
        }
        // Collect the self-type name: the last depth-0 non-keyword ident
        // before the body, restarting after `for` (`impl Trait for Type`).
        let mut type_name = String::new();
        let mut angle = 0i32;
        while self.pos < self.fa.code_len() && !self.at('{') && !self.at(';') {
            if self.at('<') {
                angle += 1;
            } else if self.at('>') {
                angle -= 1;
            } else if angle <= 0 {
                if self.kw("for") {
                    type_name.clear();
                } else if self.kw("where") {
                    // Bounds often repeat type params; stop collecting.
                    while self.pos < self.fa.code_len() && !self.at('{') && !self.at(';') {
                        self.bump();
                    }
                    break;
                } else if let Some(name) = self.ident() {
                    if !crate::rules::is_keyword(name) {
                        type_name = name.to_string();
                    }
                }
            }
            self.bump();
        }
        let mut items = Vec::new();
        if self.eat('{') {
            items = self.parse_items(self.fa.code_len());
            self.eat('}');
        } else {
            self.eat(';');
        }
        Item::Impl(ImplItem { type_name, items })
    }

    fn parse_trait(&mut self) -> Item {
        self.bump(); // `trait`
        let name = self.ident().unwrap_or("").to_string();
        self.bump();
        while self.pos < self.fa.code_len() && !self.at('{') && !self.at(';') {
            self.bump();
        }
        let mut items = Vec::new();
        if self.eat('{') {
            items = self.parse_items(self.fa.code_len());
            self.eat('}');
        } else {
            self.eat(';');
        }
        // A trait is close enough to a mod for the passes' purposes: a
        // named container of fn items (default method bodies).
        Item::Mod(ModItem { name, items })
    }

    fn parse_mod(&mut self) -> Item {
        self.bump(); // `mod`
        let name = self.ident().unwrap_or("").to_string();
        self.bump();
        if self.eat(';') {
            return Item::Other;
        }
        let mut items = Vec::new();
        if self.eat('{') {
            items = self.parse_items(self.fa.code_len());
            self.eat('}');
        }
        Item::Mod(ModItem { name, items })
    }

    // ------------------------------------------------------------- blocks

    fn parse_block(&mut self) -> Block {
        let open = self.pos;
        let close = self.fa.brace_close(open).unwrap_or(self.fa.code_len());
        self.bump(); // `{`
        let mut stmts = Vec::new();
        while self.pos < close {
            self.skip_attrs();
            if self.pos >= close {
                break;
            }
            if self.eat(';') {
                continue;
            }
            // Loop labels: `'outer: loop { ... }`.
            if self.fa.is_lifetime(self.pos) && self.at_n(1, ':') {
                self.bump();
                self.bump();
                continue;
            }
            let before = self.pos;
            if self.kw("let") {
                stmts.push(self.parse_let());
            } else if self.starts_item() {
                match self.parse_item(close) {
                    Some(item) => stmts.push(Stmt::Item(Box::new(item))),
                    None => self.bump(),
                }
            } else {
                let expr = self.parse_expr();
                let semi = self.eat(';');
                stmts.push(Stmt::Expr { expr, semi });
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.pos = close;
        self.eat('}');
        Block { open, close, stmts }
    }

    /// Does an item start at the cursor (inside a block)?
    fn starts_item(&self) -> bool {
        let Some(name) = self.ident() else {
            return false;
        };
        match name {
            "fn" | "struct" | "enum" | "impl" | "trait" | "use" | "type" | "static"
            | "macro_rules" | "pub" => true,
            // `mod` / `const` / `extern` start items; `unsafe` usually
            // starts a block expression, `async` usually a block/closure.
            "mod" | "extern" => true,
            "const" => {
                // `const { .. }` blocks are expressions; `const X:` items.
                !self.fa.is_punct(self.pos + 1, '{')
            }
            _ => false,
        }
    }

    fn parse_let(&mut self) -> Stmt {
        let pos = self.pos;
        self.bump(); // `let`
        let pat = self.parse_pat();
        let ty = if self.at(':') && !self.at_n(1, ':') {
            self.bump();
            Some(self.type_text())
        } else {
            None
        };
        let init = if self.at('=') && !self.at_n(1, '=') {
            self.bump();
            Some(self.parse_expr())
        } else {
            None
        };
        let else_block = if self.kw("else") {
            self.bump();
            if self.at('{') {
                Some(self.parse_block())
            } else {
                None
            }
        } else {
            None
        };
        self.eat(';');
        Stmt::Let {
            pos,
            pat,
            ty,
            init,
            else_block,
        }
    }

    // -------------------------------------------------------- expressions

    /// Full expression, including assignment.
    fn parse_expr(&mut self) -> Expr {
        // Closures and jumps sit below assignment.
        if self.kw("move") || self.at('|') || (self.at('|') && self.at_n(1, '|')) {
            if let Some(c) = self.try_parse_closure() {
                return c;
            }
        }
        if self.kw("return") || self.kw("break") || self.kw("continue") {
            let pos = self.pos;
            self.bump();
            if self.fa.is_lifetime(self.pos) {
                self.bump(); // `break 'label`
            }
            let value = if self.expr_can_start() {
                Some(Box::new(self.parse_expr()))
            } else {
                None
            };
            return Expr::Jump { pos, value };
        }
        let lhs = self.parse_range_expr();
        // Assignment / compound assignment.
        if self.at('=') && !self.at_n(1, '=') && !self.at_n(1, '>') {
            let pos = self.pos;
            self.bump();
            let rhs = self.parse_expr();
            return Expr::Assign {
                pos,
                op: None,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        for (c, op, width) in [
            ('+', BinOp::Add, 1),
            ('-', BinOp::Sub, 1),
            ('*', BinOp::Mul, 1),
            ('/', BinOp::Div, 1),
            ('%', BinOp::Rem, 1),
            ('^', BinOp::Bit, 1),
        ] {
            if self.at(c) && self.at_n(width, '=') && !self.at_n(width + 1, '=') {
                let pos = self.pos;
                self.pos += width + 1;
                let rhs = self.parse_expr();
                return Expr::Assign {
                    pos,
                    op: Some(op),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
            }
        }
        // `&=`, `|=`, `<<=`, `>>=` — rarer; handle the two-char shifts.
        if (self.at('&') || self.at('|')) && self.at_n(1, '=') && !self.at_n(2, '=') {
            let pos = self.pos;
            self.pos += 2;
            let rhs = self.parse_expr();
            return Expr::Assign {
                pos,
                op: Some(BinOp::Bit),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        if (self.at('<') && self.at_n(1, '<') || self.at('>') && self.at_n(1, '>'))
            && self.at_n(2, '=')
        {
            let pos = self.pos;
            self.pos += 3;
            let rhs = self.parse_expr();
            return Expr::Assign {
                pos,
                op: Some(BinOp::Shift),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    /// Can a new expression start at the cursor? (Used after `return`.)
    fn expr_can_start(&self) -> bool {
        if self.pos >= self.fa.code_len() {
            return false;
        }
        if let Some(name) = self.ident() {
            return !EXPR_STOP_KEYWORDS.contains(&name);
        }
        if self.fa.is_literal(self.pos) {
            return true;
        }
        self.at('(')
            || self.at('[')
            || self.at('{') && !self.no_struct
            || self.at('&')
            || self.at('*')
            || self.at('!')
            || self.at('-')
            || self.at('|')
            || self.at('_')
    }

    fn parse_range_expr(&mut self) -> Expr {
        if self.at('.') && self.at_n(1, '.') {
            let pos = self.pos;
            self.pos += 2;
            self.eat('='); // `..=`
            let hi = if self.expr_can_start() {
                Some(Box::new(self.parse_binary(0)))
            } else {
                None
            };
            return Expr::Range { pos, lo: None, hi };
        }
        let lo = self.parse_binary(0);
        if self.at('.') && self.at_n(1, '.') && !self.at_n(2, '.') {
            let pos = self.pos;
            self.pos += 2;
            self.eat('=');
            let hi = if self.expr_can_start() {
                Some(Box::new(self.parse_binary(0)))
            } else {
                None
            };
            return Expr::Range {
                pos,
                lo: Some(Box::new(lo)),
                hi,
            };
        }
        lo
    }

    /// Binary operator at the cursor: `(op, token width, precedence)`.
    /// Returns `None` when the cursor is not at a binary operator (or it
    /// is part of `=>`, `->`, `..`, an assignment, or a closing angle).
    fn binary_op(&self) -> Option<(BinOp, usize, u8)> {
        let c0 = self.punct_at(0)?;
        let c1 = self.punct_at(1);
        match c0 {
            '&' if c1 == Some('&') => Some((BinOp::Logic, 2, 1)),
            '|' if c1 == Some('|') => Some((BinOp::Logic, 2, 0)),
            '=' if c1 == Some('=') => Some((BinOp::Cmp, 2, 2)),
            '!' if c1 == Some('=') => Some((BinOp::Cmp, 2, 2)),
            '<' if c1 == Some('=') => Some((BinOp::Cmp, 2, 2)),
            '>' if c1 == Some('=') => Some((BinOp::Cmp, 2, 2)),
            '<' if c1 == Some('<') => Some((BinOp::Shift, 2, 5)),
            '>' if c1 == Some('>') => Some((BinOp::Shift, 2, 5)),
            '<' => Some((BinOp::Cmp, 1, 2)),
            '>' => Some((BinOp::Cmp, 1, 2)),
            '|' => Some((BinOp::Bit, 1, 3)),
            '^' => Some((BinOp::Bit, 1, 3)),
            '&' => Some((BinOp::Bit, 1, 4)),
            '+' => Some((BinOp::Add, 1, 6)),
            '-' if c1 != Some('>') => Some((BinOp::Sub, 1, 6)),
            '*' => Some((BinOp::Mul, 1, 7)),
            '/' => Some((BinOp::Div, 1, 7)),
            '%' => Some((BinOp::Rem, 1, 7)),
            _ => None,
        }
    }

    fn punct_at(&self, offset: usize) -> Option<char> {
        self.fa.punct_char(self.pos + offset)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Expr {
        let mut lhs = self.parse_unary();
        loop {
            // `as` casts bind tighter than any binary operator here.
            while self.kw("as") {
                let pos = self.pos;
                self.bump();
                let ty = self.cast_type_text();
                lhs = Expr::Cast {
                    pos,
                    expr: Box::new(lhs),
                    ty,
                };
            }
            let Some((op, width, prec)) = self.binary_op() else {
                break;
            };
            if prec < min_prec {
                break;
            }
            // Reject assignment lookalikes: `x += 1` is handled above.
            if width == 1
                && self.at_n(1, '=')
                && matches!(
                    op,
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem | BinOp::Bit
                )
            {
                break;
            }
            let pos = self.pos;
            self.pos += width;
            let rhs = self.parse_binary(prec + 1);
            lhs = Expr::Binary {
                pos,
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    /// The target type of an `as` cast: a path-shaped type (with
    /// optional `&`/`*const`/`*mut` prefixes and balanced generics).
    fn cast_type_text(&mut self) -> String {
        let mut parts = Vec::new();
        while self.at('&') || self.at('*') {
            parts.push(self.fa.text(self.pos).to_string());
            self.bump();
            if self.kw("const") || self.kw("mut") {
                parts.push(self.fa.text(self.pos).to_string());
                self.bump();
            }
        }
        if self.kw("dyn") {
            parts.push("dyn".to_string());
            self.bump();
        }
        loop {
            match self.ident() {
                Some(name) if !crate::rules::is_keyword(name) => {
                    parts.push(name.to_string());
                    self.bump();
                }
                _ => break,
            }
            if self.at('<') {
                let start = self.pos;
                self.skip_angles();
                if self.pos > start {
                    parts.push("<>".to_string());
                }
            }
            if self.at_coloncolon() {
                parts.push("::".to_string());
                self.bump();
                self.bump();
                continue;
            }
            break;
        }
        parts.join(" ")
    }

    fn parse_unary(&mut self) -> Expr {
        if self.at('&') {
            let pos = self.pos;
            // `&&x` is two nested borrows.
            let double = self.at_n(1, '&');
            self.bump();
            if double {
                // Leave the second `&` for the recursive call.
            }
            let mutable = self.eat_kw("mut");
            let expr = self.parse_unary();
            return Expr::Unary {
                pos,
                op: if mutable { UnOp::RefMut } else { UnOp::Ref },
                expr: Box::new(expr),
            };
        }
        if self.at('*') || self.at('!') || self.at('-') {
            let pos = self.pos;
            self.bump();
            let expr = self.parse_unary();
            return Expr::Unary {
                pos,
                op: UnOp::Other,
                expr: Box::new(expr),
            };
        }
        let primary = self.parse_primary();
        self.parse_postfix(primary)
    }

    fn parse_postfix(&mut self, mut expr: Expr) -> Expr {
        loop {
            if self.at('?') {
                self.bump(); // `?` is transparent to the passes
                continue;
            }
            if self.at('.') && !self.at_n(1, '.') {
                // Method call / field access / await / tuple index.
                if let Some(name) = self.fa.ident_at(self.pos + 1) {
                    let name_pos = self.pos + 1;
                    if name == "await" {
                        self.pos += 2;
                        continue;
                    }
                    let name = name.to_string();
                    self.pos += 2;
                    // Turbofish between name and `(`.
                    if self.at_coloncolon() && self.fa.is_punct(self.pos + 2, '<') {
                        self.pos += 2;
                        self.skip_angles();
                    }
                    if self.at('(') {
                        self.bump();
                        let args = self.parse_comma_exprs(')');
                        self.eat(')');
                        expr = Expr::MethodCall {
                            pos: name_pos,
                            receiver: Box::new(expr),
                            name,
                            args,
                        };
                    } else {
                        expr = Expr::Field {
                            pos: name_pos,
                            base: Box::new(expr),
                            name,
                        };
                    }
                    continue;
                }
                if self.fa.is_number(self.pos + 1) {
                    // Tuple index `x.0` (the lexer may fuse `0.1`).
                    let name_pos = self.pos + 1;
                    let text = self.fa.text(name_pos).to_string();
                    self.pos += 2;
                    for part in text.split('.') {
                        expr = Expr::Field {
                            pos: name_pos,
                            base: Box::new(expr),
                            name: part.to_string(),
                        };
                    }
                    continue;
                }
                break;
            }
            if self.at('(') {
                let pos = self.pos;
                self.bump();
                let args = self.parse_comma_exprs(')');
                self.eat(')');
                expr = Expr::Call {
                    pos,
                    callee: Box::new(expr),
                    args,
                };
                continue;
            }
            if self.at('[') {
                let pos = self.pos;
                self.bump();
                let saved = self.no_struct;
                self.no_struct = false;
                let index = self.parse_expr();
                self.no_struct = saved;
                self.eat(']');
                expr = Expr::Index {
                    pos,
                    base: Box::new(expr),
                    index: Box::new(index),
                };
                continue;
            }
            break;
        }
        expr
    }

    /// Parse a comma-separated expression list up to (not consuming)
    /// `close`.
    fn parse_comma_exprs(&mut self, close: char) -> Vec<Expr> {
        let saved = self.no_struct;
        self.no_struct = false;
        let mut out = Vec::new();
        while self.pos < self.fa.code_len() && !self.at(close) {
            self.skip_attrs();
            if self.at(close) {
                break;
            }
            let before = self.pos;
            out.push(self.parse_expr());
            if self.pos == before {
                self.bump();
            }
            if !self.eat(',') {
                break;
            }
        }
        self.no_struct = saved;
        out
    }

    fn try_parse_closure(&mut self) -> Option<Expr> {
        let start = self.pos;
        self.eat_kw("move");
        if !self.at('|') {
            self.pos = start;
            return None;
        }
        let pos = self.pos;
        let mut params = Vec::new();
        if self.at('|') && self.at_n(1, '|') {
            self.pos += 2; // `||`: no parameters
        } else {
            self.bump(); // opening `|`
            while self.pos < self.fa.code_len() && !self.at('|') {
                params.push(self.parse_pat());
                if self.at(':') && !self.at_n(1, ':') {
                    self.bump();
                    let _ = self.type_text();
                }
                if !self.eat(',') {
                    break;
                }
            }
            self.eat('|');
        }
        if self.at('-') && self.at_n(1, '>') {
            self.pos += 2;
            let _ = self.type_text();
        }
        let body = if self.at('{') {
            Expr::Block(self.parse_block())
        } else {
            let saved = self.no_struct;
            self.no_struct = false;
            let e = self.parse_expr();
            self.no_struct = saved;
            e
        };
        Some(Expr::Closure {
            pos,
            params,
            body: Box::new(body),
        })
    }

    fn parse_primary(&mut self) -> Expr {
        let pos = self.pos;
        if pos >= self.fa.code_len() {
            return Expr::Unknown { pos };
        }
        if self.fa.is_literal(pos) {
            self.bump();
            return Expr::Lit { pos };
        }
        if self.at('(') {
            self.bump();
            let elems = self.parse_comma_exprs(')');
            // Remember whether a trailing comma made this a 1-tuple; a
            // plain parenthesized expression stays transparent.
            let was_tuple =
                elems.len() != 1 || self.fa.punct_char(self.pos.wrapping_sub(1)) == Some(',');
            self.eat(')');
            let mut elems = elems;
            return if !was_tuple && elems.len() == 1 {
                self.parse_postfix_after_group(elems.pop().unwrap_or(Expr::Unknown { pos }))
            } else {
                self.parse_postfix_after_group(Expr::Tuple { pos, elems })
            };
        }
        if self.at('[') {
            self.bump();
            let saved = self.no_struct;
            self.no_struct = false;
            let mut elems = Vec::new();
            if !self.at(']') {
                let first = self.parse_expr();
                if self.eat(';') {
                    let len = self.parse_expr();
                    elems.push(first);
                    elems.push(len);
                } else {
                    elems.push(first);
                    while self.eat(',') {
                        if self.at(']') {
                            break;
                        }
                        elems.push(self.parse_expr());
                    }
                }
            }
            self.no_struct = saved;
            self.eat(']');
            return Expr::Array { pos, elems };
        }
        if self.at('{') {
            return Expr::Block(self.parse_block());
        }
        if self.kw("if") {
            return self.parse_if();
        }
        if self.kw("match") {
            return self.parse_match();
        }
        if self.kw("while") {
            self.bump();
            let cond = self.parse_cond();
            let body = self.braced_body();
            return Expr::While {
                pos,
                cond: Box::new(cond),
                body,
            };
        }
        if self.kw("loop") {
            self.bump();
            let body = self.braced_body();
            return Expr::Loop { pos, body };
        }
        if self.kw("for") {
            self.bump();
            let pat = self.parse_pat();
            self.eat_kw("in");
            let saved = self.no_struct;
            self.no_struct = true;
            let iter = self.parse_range_expr();
            self.no_struct = saved;
            let body = self.braced_body();
            return Expr::For {
                pos,
                pat,
                iter: Box::new(iter),
                body,
            };
        }
        if self.kw("unsafe") || self.kw("async") || self.kw("const") {
            self.bump();
            self.eat_kw("move");
            if self.at('{') {
                return Expr::Block(self.parse_block());
            }
            return Expr::Unknown { pos };
        }
        if self.at('_') || self.kw("_") {
            self.bump();
            return Expr::Path {
                pos,
                segments: vec!["_".to_string()],
            };
        }
        if self.ident().is_some() {
            return self.parse_path_expr();
        }
        // Unknown token: consume it so the caller always advances.
        self.bump();
        Expr::Unknown { pos }
    }

    /// Postfix chains continue after a parenthesized group:
    /// `(x as u64).to_string()`.
    fn parse_postfix_after_group(&mut self, expr: Expr) -> Expr {
        self.parse_postfix(expr)
    }

    fn braced_body(&mut self) -> Block {
        if self.at('{') {
            self.parse_block()
        } else {
            // Graceful degradation: synthesize an empty block here.
            Block {
                open: self.pos,
                close: self.pos,
                stmts: Vec::new(),
            }
        }
    }

    /// An `if`/`while` condition, with struct literals forbidden and
    /// `let`-conditions recognized.
    fn parse_cond(&mut self) -> Expr {
        let saved = self.no_struct;
        self.no_struct = true;
        let cond = if self.kw("let") {
            let pos = self.pos;
            self.bump();
            let pat = self.parse_pat();
            let expr = if self.at('=') && !self.at_n(1, '=') {
                self.bump();
                self.parse_binary(0)
            } else {
                Expr::Unknown { pos: self.pos }
            };
            Expr::LetCond {
                pos,
                pat,
                expr: Box::new(expr),
            }
        } else {
            self.parse_binary(0)
        };
        self.no_struct = saved;
        cond
    }

    fn parse_if(&mut self) -> Expr {
        let pos = self.pos;
        self.bump(); // `if`
        let cond = self.parse_cond();
        let then = self.braced_body();
        let else_ = if self.kw("else") {
            self.bump();
            if self.kw("if") {
                Some(Box::new(self.parse_if()))
            } else if self.at('{') {
                Some(Box::new(Expr::Block(self.parse_block())))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            pos,
            cond: Box::new(cond),
            then,
            else_,
        }
    }

    fn parse_match(&mut self) -> Expr {
        let pos = self.pos;
        self.bump(); // `match`
        let saved = self.no_struct;
        self.no_struct = true;
        let scrutinee = self.parse_binary(0);
        self.no_struct = saved;
        let mut arms = Vec::new();
        if self.at('{') {
            let close = self.fa.brace_close(self.pos).unwrap_or(self.fa.code_len());
            self.bump();
            while self.pos < close {
                self.skip_attrs();
                if self.pos >= close {
                    break;
                }
                let arm_pos = self.pos;
                let pat = self.parse_pat_or();
                let guard = if self.eat_kw("if") {
                    let saved = self.no_struct;
                    self.no_struct = true;
                    let g = self.parse_binary(0);
                    self.no_struct = saved;
                    Some(g)
                } else {
                    None
                };
                if self.at('=') && self.at_n(1, '>') {
                    self.pos += 2;
                } else {
                    // Mis-parse: resynchronize at the next arm.
                    self.skip_to_arm_end(close);
                    continue;
                }
                let body = self.parse_expr();
                arms.push(Arm {
                    pos: arm_pos,
                    pat,
                    guard,
                    body,
                });
                self.eat(',');
            }
            self.pos = close;
            self.eat('}');
        }
        Expr::Match {
            pos,
            scrutinee: Box::new(scrutinee),
            arms,
        }
    }

    /// Resynchronize to just past the current arm: the next depth-0 `,`
    /// or the match's closing brace.
    fn skip_to_arm_end(&mut self, close: usize) {
        let mut depth = 0i32;
        while self.pos < close {
            if self.at('(') || self.at('[') || self.at('{') {
                depth += 1;
            } else if self.at(')') || self.at(']') || self.at('}') {
                depth -= 1;
            } else if self.at(',') && depth == 0 {
                self.bump();
                return;
            }
            self.bump();
        }
    }

    /// A path expression (or macro / struct literal starting with one).
    fn parse_path_expr(&mut self) -> Expr {
        let pos = self.pos;
        let mut segments = Vec::new();
        while let Some(name) = self.ident() {
            segments.push(name.to_string());
            self.bump();
            if !self.at_coloncolon() {
                break;
            }
            if self.fa.is_punct(self.pos + 2, '<') {
                // Turbofish: `path::<T>`; generics are type noise.
                self.pos += 2;
                self.skip_angles();
                if self.at_coloncolon() {
                    self.pos += 2;
                    continue;
                }
                break;
            }
            self.pos += 2;
        }
        if self.at('!') && !self.at_n(1, '=') {
            // Macro invocation.
            let name_pos = pos + (segments.len().saturating_sub(1)) * 2;
            self.bump(); // `!`
            let (args, args_start, args_end) = self.parse_macro_args();
            return Expr::Macro {
                pos: name_pos.min(self.fa.code_len()),
                segments,
                args,
                args_start,
                args_end,
            };
        }
        if self.at('{') && !self.no_struct && self.looks_like_struct_lit() {
            return self.parse_struct_lit(pos, segments);
        }
        Expr::Path { pos, segments }
    }

    /// Heuristic: does the `{` at the cursor open a struct literal?
    /// (Checked only where struct literals are legal.) `Path {}` or
    /// `Path { ident: / ident, / ident } / ..` qualifies.
    fn looks_like_struct_lit(&self) -> bool {
        let p = self.pos;
        if self.fa.is_punct(p + 1, '}') {
            return true;
        }
        if self.fa.is_punct(p + 1, '.') && self.fa.is_punct(p + 2, '.') {
            return true;
        }
        if self.fa.ident_at(p + 1).is_some() {
            return (self.fa.is_punct(p + 2, ':') && !self.fa.is_punct(p + 3, ':'))
                || self.fa.is_punct(p + 2, ',')
                || self.fa.is_punct(p + 2, '}');
        }
        false
    }

    fn parse_struct_lit(&mut self, pos: usize, segments: Vec<String>) -> Expr {
        let close = self.fa.brace_close(self.pos).unwrap_or(self.fa.code_len());
        self.bump(); // `{`
        let mut fields = Vec::new();
        let mut rest = None;
        let saved = self.no_struct;
        self.no_struct = false;
        while self.pos < close {
            self.skip_attrs();
            if self.pos >= close {
                break;
            }
            if self.at('.') && self.at_n(1, '.') {
                self.pos += 2;
                rest = Some(Box::new(self.parse_expr()));
                break;
            }
            let Some(fname) = self.ident() else {
                self.bump();
                continue;
            };
            let fname = fname.to_string();
            self.bump();
            if self.at(':') && !self.at_n(1, ':') {
                self.bump();
                let value = self.parse_expr();
                fields.push((fname, Some(value)));
            } else {
                fields.push((fname, None));
            }
            if !self.eat(',') {
                break;
            }
        }
        self.no_struct = saved;
        self.pos = close;
        self.eat('}');
        Expr::StructLit {
            pos,
            segments,
            fields,
            rest,
        }
    }

    /// Macro arguments: record the delimited token range and parse a
    /// best-effort comma-separated expression list from it.
    fn parse_macro_args(&mut self) -> (Vec<Expr>, usize, usize) {
        let (open, close_c) = if self.at('(') {
            ('(', ')')
        } else if self.at('[') {
            ('[', ']')
        } else if self.at('{') {
            ('{', '}')
        } else {
            return (Vec::new(), self.pos, self.pos);
        };
        // Find the matching closer.
        let start = self.pos + 1;
        let mut depth = 0i32;
        let mut end = self.pos;
        let mut probe = self.pos;
        while probe < self.fa.code_len() {
            if let Some(c) = self.fa.punct_char(probe) {
                if c == open {
                    depth += 1;
                } else if c == close_c {
                    depth -= 1;
                    if depth == 0 {
                        end = probe;
                        break;
                    }
                }
            }
            probe += 1;
        }
        if end == self.pos {
            // Unbalanced; consume the opener only.
            self.bump();
            return (Vec::new(), start, start);
        }
        self.bump(); // opener
        let mut args = Vec::new();
        let saved = self.no_struct;
        self.no_struct = false;
        while self.pos < end {
            let before = self.pos;
            args.push(self.parse_expr());
            if self.pos == before {
                self.bump();
            }
            if !self.eat(',') && self.pos < end {
                // Not a comma-separated expr list (e.g. macro_rules
                // matter); fall back to the raw range.
                break;
            }
        }
        self.no_struct = saved;
        self.pos = end;
        self.bump(); // closer
        (args, start, end)
    }

    // ----------------------------------------------------------- patterns

    /// An or-pattern: `A | B | C` (used for match arms).
    fn parse_pat_or(&mut self) -> Pat {
        self.eat('|'); // optional leading `|`
        let pos = self.pos;
        let first = self.parse_pat();
        if !self.at('|') || self.at_n(1, '|') {
            return first;
        }
        let mut alts = vec![first];
        while self.at('|') && !self.at_n(1, '|') {
            self.bump();
            alts.push(self.parse_pat());
        }
        Pat::Or { pos, alts }
    }

    fn parse_pat(&mut self) -> Pat {
        let pos = self.pos;
        if pos >= self.fa.code_len() {
            return Pat::Unknown { pos };
        }
        if self.at('&') {
            self.bump();
            self.eat('&');
            self.eat_kw("mut");
            return self.parse_pat();
        }
        // `ref` / `ref mut` / `mut` binding modes are all transparent.
        self.eat_kw("ref");
        self.eat_kw("mut");
        if self.at('_') || self.kw("_") {
            self.bump();
            return Pat::Wild { pos };
        }
        if self.at('.') && self.at_n(1, '.') {
            self.pos += 2;
            self.eat('=');
            if self.fa.is_literal(self.pos) {
                self.bump();
                return Pat::Lit { pos };
            }
            return Pat::Rest { pos };
        }
        if self.at('-') {
            self.bump(); // negative literal pattern
            if self.fa.is_literal(self.pos) {
                self.bump();
            }
            return Pat::Lit { pos };
        }
        if self.fa.is_literal(pos) {
            self.bump();
            // Literal range patterns: `1..=9`.
            if self.at('.') && self.at_n(1, '.') {
                self.pos += 2;
                self.eat('=');
                if self.fa.is_literal(self.pos) {
                    self.bump();
                }
            }
            return Pat::Lit { pos };
        }
        if self.at('(') {
            self.bump();
            let elems = self.parse_comma_pats(')');
            self.eat(')');
            return Pat::Tuple { pos, elems };
        }
        if self.at('[') {
            self.bump();
            let elems = self.parse_comma_pats(']');
            self.eat(']');
            return Pat::Slice { pos, elems };
        }
        if self.kw("box") {
            self.bump();
            return self.parse_pat();
        }
        if self.ident().is_some() {
            let mut segments = Vec::new();
            while let Some(name) = self.ident() {
                segments.push(name.to_string());
                self.bump();
                if !self.at_coloncolon() {
                    break;
                }
                if self.fa.is_punct(self.pos + 2, '<') {
                    self.pos += 2;
                    self.skip_angles();
                    if self.at_coloncolon() {
                        self.pos += 2;
                        continue;
                    }
                    break;
                }
                self.pos += 2;
            }
            if self.at('(') {
                self.bump();
                let elems = self.parse_comma_pats(')');
                self.eat(')');
                return Pat::TupleStruct {
                    pos,
                    segments,
                    elems,
                };
            }
            if self.at('{') {
                return self.parse_struct_pat(pos, segments);
            }
            if self.at('@') {
                self.bump();
                let sub = self.parse_pat();
                let name = segments.pop().unwrap_or_default();
                return Pat::Binding {
                    pos,
                    name,
                    sub: Some(Box::new(sub)),
                };
            }
            // A single lowercase-ish segment is a binding; anything
            // qualified or capitalized is a path (unit variant / const).
            if segments.len() == 1 {
                let name = &segments[0];
                let first = name.chars().next().unwrap_or('a');
                if !first.is_uppercase() {
                    let name = segments.pop().unwrap_or_default();
                    return Pat::Binding {
                        pos,
                        name,
                        sub: None,
                    };
                }
            }
            return Pat::Path { pos, segments };
        }
        // Unknown token: consume it so the caller always advances.
        self.bump();
        Pat::Unknown { pos }
    }

    fn parse_comma_pats(&mut self, close: char) -> Vec<Pat> {
        let mut out = Vec::new();
        while self.pos < self.fa.code_len() && !self.at(close) {
            self.skip_attrs();
            if self.at(close) {
                break;
            }
            let before = self.pos;
            out.push(self.parse_pat_or());
            if self.pos == before {
                self.bump();
            }
            if !self.eat(',') {
                break;
            }
        }
        out
    }

    fn parse_struct_pat(&mut self, pos: usize, segments: Vec<String>) -> Pat {
        let close = self.fa.brace_close(self.pos).unwrap_or(self.fa.code_len());
        self.bump(); // `{`
        let mut fields = Vec::new();
        let mut rest = false;
        while self.pos < close {
            self.skip_attrs();
            if self.pos >= close {
                break;
            }
            if self.at('.') && self.at_n(1, '.') {
                rest = true;
                self.pos += 2;
                continue;
            }
            self.eat_kw("ref");
            self.eat_kw("mut");
            let Some(fname) = self.ident() else {
                self.bump();
                continue;
            };
            let fname = fname.to_string();
            self.bump();
            if self.at(':') && !self.at_n(1, ':') {
                self.bump();
                let sub = self.parse_pat_or();
                fields.push((fname, Some(sub)));
            } else {
                fields.push((fname, None));
            }
            if !self.eat(',') {
                break;
            }
        }
        self.pos = close;
        self.eat('}');
        Pat::Struct {
            pos,
            segments,
            fields,
            rest,
        }
    }
}

// --------------------------------------------------------------- walking

/// Call `f` on every expression in the file, pre-order (statement order
/// within blocks, outermost expression first within a statement).
pub fn visit_exprs<'a>(file: &'a File, f: &mut impl FnMut(&'a Expr)) {
    for item in &file.items {
        visit_item_exprs(item, f);
    }
}

fn visit_item_exprs<'a>(item: &'a Item, f: &mut impl FnMut(&'a Expr)) {
    match item {
        Item::Fn(func) => {
            if let Some(body) = &func.body {
                visit_block_exprs(body, f);
            }
        }
        Item::Impl(imp) => {
            for item in &imp.items {
                visit_item_exprs(item, f);
            }
        }
        Item::Mod(m) => {
            for item in &m.items {
                visit_item_exprs(item, f);
            }
        }
        Item::Struct(_) | Item::Enum(_) | Item::Other => {}
    }
}

/// Call `f` on every expression in a block, pre-order.
pub fn visit_block_exprs<'a>(block: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(init) = init {
                    visit_expr(init, f);
                }
                if let Some(b) = else_block {
                    visit_block_exprs(b, f);
                }
            }
            Stmt::Expr { expr, .. } => visit_expr(expr, f),
            Stmt::Item(item) => visit_item_exprs(item, f),
        }
    }
}

/// Call `f` on `expr` and every expression nested inside it, pre-order.
pub fn visit_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    for child in expr.children() {
        visit_expr(child, f);
    }
    for block in expr.child_blocks() {
        visit_block_exprs(block, f);
    }
    if let Expr::If { then, .. } = expr {
        // `then` handled via child_blocks; nothing extra.
        let _ = then;
    }
}

/// Call `f` on every function item in the file (including methods in
/// impls, default trait methods and fns in inline modules).
pub fn visit_fns<'a>(file: &'a File, f: &mut impl FnMut(&'a FnItem)) {
    fn walk<'a>(items: &'a [Item], f: &mut impl FnMut(&'a FnItem)) {
        for item in items {
            match item {
                Item::Fn(func) => f(func),
                Item::Impl(imp) => walk(&imp.items, f),
                Item::Mod(m) => walk(&m.items, f),
                _ => {}
            }
        }
    }
    walk(&file.items, f);
}

/// Call `f` on every pattern in the file (fn params, lets, match arms,
/// closures, for-loops), pre-order.
pub fn visit_pats<'a>(file: &'a File, f: &mut impl FnMut(&'a Pat)) {
    visit_fns(file, &mut |func| {
        for p in &func.params {
            visit_pat(&p.pat, f);
        }
    });
    visit_exprs(file, &mut |expr| match expr {
        Expr::Match { arms, .. } => {
            for arm in arms {
                visit_pat(&arm.pat, f);
            }
        }
        Expr::LetCond { pat, .. } | Expr::For { pat, .. } => visit_pat(pat, f),
        Expr::Closure { params, .. } => {
            for p in params {
                visit_pat(p, f);
            }
        }
        _ => {}
    });
    // `let` statements.
    fn walk_items<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Pat)) {
        for item in items {
            match item {
                Item::Fn(func) => {
                    if let Some(body) = &func.body {
                        walk_block(body, f);
                    }
                }
                Item::Impl(imp) => walk_items(&imp.items, f),
                Item::Mod(m) => walk_items(&m.items, f),
                _ => {}
            }
        }
    }
    fn walk_block<'a>(block: &'a Block, f: &mut impl FnMut(&'a Pat)) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let {
                    pat,
                    init,
                    else_block,
                    ..
                } => {
                    visit_pat(pat, f);
                    if let Some(init) = init {
                        walk_expr_blocks(init, f);
                    }
                    if let Some(b) = else_block {
                        walk_block(b, f);
                    }
                }
                Stmt::Expr { expr, .. } => walk_expr_blocks(expr, f),
                Stmt::Item(item) => walk_items(std::slice::from_ref(item), f),
            }
        }
    }
    fn walk_expr_blocks<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Pat)) {
        for child in expr.children() {
            walk_expr_blocks(child, f);
        }
        for block in expr.child_blocks() {
            walk_block(block, f);
        }
    }
    walk_items(&file.items, f);
}

/// Call `f` on `pat` and every pattern nested inside it, pre-order.
pub fn visit_pat<'a>(pat: &'a Pat, f: &mut impl FnMut(&'a Pat)) {
    f(pat);
    match pat {
        Pat::Struct { fields, .. } => {
            for (_, sub) in fields {
                if let Some(sub) = sub {
                    visit_pat(sub, f);
                }
            }
        }
        Pat::TupleStruct { elems, .. } | Pat::Tuple { elems, .. } | Pat::Slice { elems, .. } => {
            for p in elems {
                visit_pat(p, f);
            }
        }
        Pat::Binding { sub: Some(sub), .. } => visit_pat(sub, f),
        Pat::Or { alts, .. } => {
            for p in alts {
                visit_pat(p, f);
            }
        }
        _ => {}
    }
}
