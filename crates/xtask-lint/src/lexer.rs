//! A hand-rolled Rust lexer: a flat token stream with byte spans and
//! line/column positions, aware of strings, raw strings, byte strings,
//! char literals, lifetimes and (nested) comments — everything needed to
//! scan for forbidden constructs without ever mistaking the inside of a
//! string or comment for code. No parse tree is built; the rule engine
//! works directly on the token stream plus brace matching.

/// What a token is. The linter only needs coarse classes; all operator
/// and delimiter characters come through as [`TokenKind::Punct`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#match`, ...).
    Ident,
    /// Integer or float literal (including suffixes).
    Number,
    /// String-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Character or byte literal: `'a'`, `b'\n'`.
    Char,
    /// Lifetime: `'a` (not followed by a closing quote).
    Lifetime,
    /// `// …` line comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` block comment, nesting handled.
    BlockComment,
    /// Any other single character (`{`, `.`, `!`, `#`, ...).
    Punct(char),
}

/// One lexed token with its position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Coarse class of the token.
    pub kind: TokenKind,
    /// Byte offset range into the source.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lex `src` into a token stream. Unterminated literals degrade
/// gracefully (the rest of the file becomes one token) — the linter must
/// never panic on weird input, it reports on what it can see.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let (line, col, start) = (self.line, self.col, self.pos);
            let c = self.bytes[self.pos];
            let kind = match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' if self.raw_string_ahead(1) => self.raw_string(1),
                b'b' if self.peek(1) == Some(b'"') => self.string_from(1),
                b'b' if self.peek(1) == Some(b'\'') => self.char_from(1),
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                    self.raw_string(2)
                }
                b'"' => self.string_from(0),
                b'\'' => self.quote(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
                b'0'..=b'9' => self.number(),
                _ => {
                    // Multi-byte UTF-8 (only legal outside literals in
                    // identifiers, which ASCII-first code never hits) is
                    // consumed byte-wise as punctuation; spans stay valid
                    // because Punct tokens are only ever *compared*, and
                    // a continuation byte can't equal an ASCII char.
                    self.bump();
                    TokenKind::Punct(c as char)
                }
            };
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.bytes.len() {
                self.bump();
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.bump();
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump_n(2); // consume "/*"
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment
    }

    /// Is a raw string (`r"`, `r#…#"`) starting `ahead` bytes from here?
    /// Distinguishes `r"…"` from raw identifiers like `r#match`.
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut i = ahead;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    fn raw_string(&mut self, prefix: usize) -> TokenKind {
        self.bump_n(prefix); // "r" or "br"
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + hashes);
                    return TokenKind::Str;
                }
            }
            self.bump();
        }
        TokenKind::Str // unterminated: rest of file
    }

    fn string_from(&mut self, prefix: usize) -> TokenKind {
        self.bump_n(prefix + 1); // optional "b", then the opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return TokenKind::Str;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str
    }

    fn char_from(&mut self, prefix: usize) -> TokenKind {
        self.bump_n(prefix + 1); // optional "b", then the opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    return TokenKind::Char;
                }
                b'\n' => return TokenKind::Char, // malformed; stop at EOL
                _ => self.bump(),
            }
        }
        TokenKind::Char
    }

    /// `'` starts either a char literal or a lifetime. Lifetime iff the
    /// quote is followed by an identifier **not** closed by another quote
    /// (`'a'` is a char, `'a` is a lifetime, `'\n'` is a char).
    fn quote(&mut self) -> TokenKind {
        let mut i = 1usize;
        if matches!(self.peek(1), Some(b'_' | b'a'..=b'z' | b'A'..=b'Z')) {
            i += 1;
            while matches!(
                self.peek(i),
                Some(b'_' | b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z')
            ) {
                i += 1;
            }
            if self.peek(i) != Some(b'\'') {
                self.bump_n(i);
                return TokenKind::Lifetime;
            }
        }
        self.char_from(0)
    }

    fn ident(&mut self) -> TokenKind {
        // Raw identifier prefix: "r#name" lexes as one Ident.
        if self.bytes[self.pos] == b'r'
            && self.peek(1) == Some(b'#')
            && matches!(self.peek(2), Some(b'_' | b'a'..=b'z' | b'A'..=b'Z'))
        {
            self.bump_n(2);
        }
        while matches!(
            self.peek(0),
            Some(b'_' | b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z')
        ) {
            self.bump();
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        while matches!(
            self.peek(0),
            Some(b'0'..=b'9' | b'_' | b'a'..=b'z' | b'A'..=b'Z')
        ) {
            // Exponent sign: 1e-9 / 1E+9 continue the literal.
            if matches!(self.peek(0), Some(b'e' | b'E'))
                && matches!(self.peek(1), Some(b'+' | b'-'))
                && matches!(self.peek(2), Some(b'0'..=b'9'))
            {
                self.bump_n(2);
            }
            self.bump();
        }
        // A fractional part: '.' followed by a digit ('..' stays a range).
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b'0'..=b'9')) {
            self.bump();
            self.number();
        }
        TokenKind::Number
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn strings_comments_and_chars_are_opaque() {
        let src = r#"let s = "a.unwrap()"; // .unwrap() here too
/* nested /* .expect() */ still comment */ x('x')"#;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .all(|(k, t)| !(matches!(k, TokenKind::Ident) && t == "unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t.contains("expect")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'x'"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = r##"let r#fn = r#"contains .unwrap() and "quotes""#; b"bytes""##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            3
        );
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Char));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let src = "a\n  b\n";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("for i in 0..10 { x[1.5e-3]; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "10"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "1.5e-3"));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| matches!(k, TokenKind::Punct('.')))
                .count(),
            2
        );
    }
}
