//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p xtask-lint --                    # lint the workspace root
//! cargo run -p xtask-lint -- --deny-all         # also fail on stale allows (CI)
//! cargo run -p xtask-lint -- --root DIR         # lint another tree (fixtures)
//! cargo run -p xtask-lint -- --format=json      # machine-readable report
//! ```
//!
//! Exit code 0 when clean, 1 on violations (or stale *enforced* allows
//! under `--deny-all`), 2 on usage / manifest errors. In JSON mode the
//! report object is the only stdout output; the schema is documented in
//! `docs/ARCHITECTURE.md`.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_format(value: &str) -> Option<Format> {
    match value {
        "text" => Some(Format::Text),
        "json" => Some(Format::Json),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref().and_then(parse_format) {
                Some(f) => format = f,
                None => {
                    eprintln!("error: --format needs `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "xtask-lint: std-only workspace invariant linter\n\
                     \n\
                     USAGE: xtask-lint [--root DIR] [--deny-all] [--format text|json]\n\
                     \n\
                     Lints every .rs file under DIR (default `.`) against\n\
                     DIR/lint.toml. See docs/INVARIANTS.md for the rules."
                );
                return ExitCode::SUCCESS;
            }
            other => match other.strip_prefix("--format=").and_then(parse_format) {
                Some(f) => format = f,
                None => {
                    eprintln!("error: unknown argument `{other}` (try --help)");
                    return ExitCode::from(2);
                }
            },
        }
    }

    let report = match xtask_lint::run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if format == Format::Json {
        print!("{}", report.to_json(deny_all));
        return if report.failed(deny_all) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    for v in &report.violations {
        println!(
            "{}:{}:{}: [{}] {}",
            v.file, v.line, v.col, v.rule, v.message
        );
        if !v.snippet.is_empty() {
            println!("    {}", v.snippet);
        }
    }
    for allow in &report.unused_allows() {
        if allow.enforced {
            let kind = if deny_all { "error" } else { "warning" };
            println!(
                "{}:{}: [{kind}] unused lint:allow({}) — nothing suppressed; remove it",
                allow.file, allow.line, allow.rule
            );
        } else {
            println!(
                "{}:{}: [warning] unused lint:allow({}) — rule not enabled for this path; \
                 remove the stale marker",
                allow.file, allow.line, allow.rule
            );
        }
    }

    println!(
        "xtask-lint: {} files scanned, {} violation(s), {} suppressed by {} allow marker(s)",
        report.files_scanned,
        report.violations.len(),
        report.suppressed,
        report.allows.len()
    );
    if report.failed(deny_all) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
