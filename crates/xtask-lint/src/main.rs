//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p xtask-lint --              # lint the workspace root
//! cargo run -p xtask-lint -- --deny-all   # also fail on unused allows (CI)
//! cargo run -p xtask-lint -- --root DIR   # lint another tree (fixtures)
//! ```
//!
//! Exit code 0 when clean, 1 on violations (or stale allows under
//! `--deny-all`), 2 on usage / manifest errors.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "xtask-lint: std-only workspace invariant linter\n\
                     \n\
                     USAGE: xtask-lint [--root DIR] [--deny-all]\n\
                     \n\
                     Lints every .rs file under DIR (default `.`) against\n\
                     DIR/lint.toml. See docs/INVARIANTS.md for the rules."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match xtask_lint::run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!(
            "{}:{}:{}: [{}] {}",
            v.file, v.line, v.col, v.rule, v.message
        );
        if !v.snippet.is_empty() {
            println!("    {}", v.snippet);
        }
    }
    let unused = report.unused_allows();
    for allow in &unused {
        let kind = if deny_all { "error" } else { "warning" };
        println!(
            "{}:{}: [{kind}] unused lint:allow({}) — nothing suppressed; remove it",
            allow.file, allow.line, allow.rule
        );
    }

    println!(
        "xtask-lint: {} files scanned, {} violation(s), {} suppressed by {} allow marker(s)",
        report.files_scanned,
        report.violations.len(),
        report.suppressed,
        report.allows.len()
    );
    if report.failed(deny_all) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
