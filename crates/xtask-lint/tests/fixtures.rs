//! Fixture suite: one minimal reproducer per rule under
//! `tests/fixtures/bad/`, one clean tree under `tests/fixtures/good/`.
//! Each bad fixture must fail with the exact rule id on the exact line;
//! the good fixture must pass with its allow marker counted as used.

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> xtask_lint::Report {
    xtask_lint::run(&fixture(name)).unwrap_or_else(|e| panic!("lint run on {name}: {e}"))
}

/// (rule, file, line) triples, sorted the way the report sorts.
fn triples(report: &xtask_lint::Report) -> Vec<(String, String, u32)> {
    report
        .violations
        .iter()
        .map(|v| (v.rule.to_string(), v.file.clone(), v.line))
        .collect()
}

#[test]
fn bad_no_panic_flags_unwrap_indexing_and_panic() {
    let report = run("bad/no-panic");
    assert_eq!(
        triples(&report),
        [
            ("no-panic-in-serving".into(), "src/serve.rs".into(), 4),
            ("no-panic-in-serving".into(), "src/serve.rs".into(), 6),
            ("no-panic-in-serving".into(), "src/serve.rs".into(), 8),
        ],
        "{:#?}",
        report.violations
    );
    assert!(report.failed(false));
}

#[test]
fn bad_total_float_flags_the_partial_cmp_line() {
    let report = run("bad/total-float");
    assert_eq!(
        triples(&report),
        [("total-float-ordering".into(), "src/sortit.rs".into(), 4)],
        "{:#?}",
        report.violations
    );
}

#[test]
fn bad_no_alloc_flags_only_the_declared_kernel() {
    let report = run("bad/no-alloc");
    assert_eq!(
        triples(&report),
        [("no-alloc-in-kernel".into(), "src/kernel.rs".into(), 4)],
        "{:#?}",
        report.violations
    );
}

#[test]
fn bad_lock_scope_flags_send_under_guard_only() {
    let report = run("bad/lock-scope");
    assert_eq!(
        triples(&report),
        [("lock-scope-discipline".into(), "src/relay.rs".into(), 8)],
        "{:#?}",
        report.violations
    );
}

#[test]
fn bad_protocol_flags_missing_arm_missing_count_and_field_mismatch() {
    let report = run("bad/protocol");
    let got = triples(&report);
    assert_eq!(got.len(), 3, "{:#?}", report.violations);
    assert!(got
        .iter()
        .all(|(rule, _, _)| rule == "protocol-exhaustiveness"));
    // Request::Shutdown (line 5) has no arm; RequestKind::Shutdown
    // (line 10) is never counted; the counter struct is short a field.
    assert!(got.contains(&(
        "protocol-exhaustiveness".into(),
        "src/protocol.rs".into(),
        5
    )));
    assert!(got.contains(&(
        "protocol-exhaustiveness".into(),
        "src/protocol.rs".into(),
        10
    )));
    assert!(got.iter().any(|(_, file, _)| file == "src/stats.rs"));
}

#[test]
fn bad_allow_markers_are_violations_and_suppress_nothing() {
    let report = run("bad/bad-allow");
    let got = triples(&report);
    // The reasonless marker (line 4) and the unknown-rule marker (line 9)
    // are themselves violations, and the reasonless one must NOT shield
    // the partial_cmp on line 5.
    assert_eq!(
        got,
        [
            ("lint-allow".into(), "src/markers.rs".into(), 4),
            ("total-float-ordering".into(), "src/markers.rs".into(), 5),
            ("lint-allow".into(), "src/markers.rs".into(), 9),
        ],
        "{:#?}",
        report.violations
    );
    assert_eq!(report.suppressed, 0);
}

#[test]
fn good_clean_passes_and_counts_the_used_allow() {
    let report = run("good/clean");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].used, 1);
    assert!(report.unused_allows().is_empty());
    assert!(!report.failed(true));
}

#[test]
fn bad_channel_flags_discard_unused_bind_drop_and_locked_call() {
    let report = run("bad/channel");
    assert_eq!(
        triples(&report),
        [
            // `Job::Stop { .. }` discards the reply sender.
            ("channel-topology".into(), "src/relay.rs".into(), 14),
            // `reply` bound but never sent on or forwarded.
            ("channel-topology".into(), "src/relay.rs".into(), 20),
            // A `Sender` parameter whose only use is `drop()`.
            ("channel-topology".into(), "src/relay.rs".into(), 28),
            // Call to the channel-touching `notify()` under a held lock.
            ("channel-topology".into(), "src/relay.rs".into(), 37),
        ],
        "{:#?}",
        report.violations
    );
}

#[test]
fn bad_counters_flags_missing_increment_and_missing_assert() {
    let report = run("bad/counters");
    assert_eq!(
        triples(&report),
        [
            // `misses` is asserted but never incremented.
            ("counter-accounting".into(), "src/stats.rs".into(), 3),
            // `skipped` is incremented but never asserted.
            ("counter-accounting".into(), "src/stats.rs".into(), 4),
        ],
        "{:#?}",
        report.violations
    );
}

#[test]
fn bad_wire_flags_cast_and_add_with_counted_allow() {
    let report = run("bad/wire");
    assert_eq!(
        triples(&report),
        [
            ("wire-safety".into(), "src/codec.rs".into(), 2),
            ("wire-safety".into(), "src/codec.rs".into(), 3),
        ],
        "{:#?}",
        report.violations
    );
    // The `len + 4` under the counted allow marker is suppressed, not
    // reported — and the marker shows as used.
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].used, 1);
}

#[test]
fn bad_error_live_flags_dead_and_unmapped_variants() {
    let report = run("bad/error-live");
    assert_eq!(
        triples(&report),
        [
            // `Gone` is never constructed outside tests.
            ("error-liveness".into(), "src/err.rs".into(), 3),
            // `Teapot` has no mapping arm in the codec (swallowed by `_`).
            ("error-liveness".into(), "src/err.rs".into(), 4),
        ],
        "{:#?}",
        report.violations
    );
}

#[test]
fn good_flow_clean_passes_all_four_passes() {
    let report = run("good/flow-clean");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(report.allows.is_empty());
    assert!(!report.failed(true));
}

/// Self-lint: the workspace itself must be clean under deny-all, and two
/// runs must produce byte-identical JSON — CI depends on both.
#[test]
fn self_lint_is_clean_and_json_is_deterministic() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let first = xtask_lint::run(&root).expect("self lint");
    let second = xtask_lint::run(&root).expect("self lint again");
    assert!(
        !first.failed(true),
        "workspace must self-lint clean: {:#?}",
        first.violations
    );
    assert_eq!(
        first.to_json(true),
        second.to_json(true),
        "JSON report must be byte-identical across runs"
    );
}

/// A stale allow for a rule that is *not* enabled on its file only ever
/// warns, even under deny-all; a stale allow for an enabled rule errors.
#[test]
fn stale_allow_for_disabled_rule_only_warns_under_deny_all() {
    let dir = std::env::temp_dir().join("xtask-lint-disabled-rule-allow");
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture");
    // no-panic is enabled on src/serve.rs only.
    std::fs::write(
        dir.join("lint.toml"),
        "[no_panic]\npaths = [\"src/serve.rs\"]\n",
    )
    .expect("write manifest");
    std::fs::write(
        src_dir.join("other.rs"),
        "// lint:allow(no-panic-in-serving) -- stale marker off the serving path\npub fn id(x: u32) -> u32 { x }\n",
    )
    .expect("write source");
    std::fs::write(src_dir.join("serve.rs"), "pub fn ok() {}\n").expect("write source");
    let report = xtask_lint::run(&dir).expect("lint run");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert_eq!(report.unused_allows().len(), 1);
    assert!(!report.unused_allows()[0].enforced);
    assert!(
        !report.failed(true),
        "stale allow for a disabled rule must not fail deny-all"
    );

    // Move the same stale marker onto the serving path: now it errors.
    std::fs::write(
        src_dir.join("serve.rs"),
        "// lint:allow(no-panic-in-serving) -- stale marker on the serving path\npub fn ok() {}\n",
    )
    .expect("write source");
    std::fs::write(src_dir.join("other.rs"), "pub fn id(x: u32) -> u32 { x }\n")
        .expect("write source");
    let report = xtask_lint::run(&dir).expect("lint run");
    assert_eq!(report.unused_allows().len(), 1);
    assert!(report.unused_allows()[0].enforced);
    assert!(
        !report.failed(false),
        "still only a warning without deny-all"
    );
    assert!(
        report.failed(true),
        "deny-all escalates the enforced stale allow"
    );
}

#[test]
fn unused_allows_fail_only_under_deny_all() {
    // The clean tree with the allow's target fixed would leave the marker
    // stale; simulate by checking failed() semantics directly on a report
    // whose allow went unused — the bad/total-float tree has no allows,
    // so craft the check against good/clean with a fresh unused marker.
    let dir = std::env::temp_dir().join("xtask-lint-unused-allow-fixture");
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture");
    std::fs::write(dir.join("lint.toml"), "# empty\n").expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "// lint:allow(total-float-ordering) -- nothing here needs it\npub fn id(x: u32) -> u32 { x }\n",
    )
    .expect("write source");
    let report = xtask_lint::run(&dir).expect("lint run");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert_eq!(report.unused_allows().len(), 1);
    assert!(!report.failed(false), "unused allow is only a warning");
    assert!(report.failed(true), "deny-all escalates unused allows");
}
