pub enum AppError {
    Io,
    Gone,
    Teapot,
}
