pub fn encode(e: &crate::AppError) -> u8 {
    match e {
        crate::AppError::Io => 1,
        crate::AppError::Gone => 2,
        _ => 0,
    }
}

pub fn open() -> crate::AppError {
    crate::AppError::Io
}

pub fn brew() -> crate::AppError {
    crate::AppError::Teapot
}
