use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub enum Job {
    Ping { reply: Sender<u32>, tag: u32 },
    Stop { reply: Sender<u32> },
}

pub fn run(job: Job) {
    match job {
        Job::Ping { reply, tag } => {
            let _ = reply.send(tag);
        }
        Job::Stop { .. } => {}
    }
}

pub fn audit(job: Job) {
    match job {
        Job::Ping { reply, tag } => println!("tag {tag}"),
        Job::Stop { reply } => {
            let _ = reply.send(0);
        }
    }
}

pub fn hang_up(reply: Sender<u32>) {
    drop(reply);
}

pub fn notify(reply: &Sender<u32>) {
    let _ = reply.send(1);
}

pub fn locked_notify(gauge: &Mutex<u32>, reply: &Sender<u32>) {
    let guard = gauge.lock();
    notify(reply);
    drop(guard);
}
