//! Minimal reproducer: allocation inside a declared hot kernel.

pub fn kernel(out: &mut [f64], src: &[f64]) {
    let staged = src.to_vec();
    out.copy_from_slice(&staged);
}

pub fn setup() -> Vec<f64> {
    // Not declared hot: allocating here is fine.
    vec![0.0; 16]
}
