pub fn decode(buf: [u8; 4]) -> usize {
    let len = u32::from_be_bytes(buf) as usize;
    len + 8
}

pub fn total(len: usize) -> usize {
    // lint:allow(wire-safety) -- the 4-byte header cannot overflow a usize frame length
    len + 4
}
