pub struct Counts {
    pub hits: u64,
    pub misses: u64,
    pub skipped: u64,
}
