pub fn bump(c: &mut crate::stats::Counts) {
    c.hits += 1;
    c.skipped += 1;
}

#[cfg(test)]
mod tests {
    #[test]
    fn hits_counted() {
        let c = crate::stats::Counts { hits: 1, misses: 0, skipped: 0 };
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 0);
    }
}
