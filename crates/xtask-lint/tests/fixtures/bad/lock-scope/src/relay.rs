//! Minimal reproducer: channel traffic inside a held lock guard's scope.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn relay(state: &Mutex<u64>, tx: &Sender<u64>) {
    let guard = state.lock().unwrap_or_else(|e| e.into_inner());
    let _ = tx.send(*guard);
}

pub fn fine(state: &Mutex<u64>, tx: &Sender<u64>) {
    let value = { *state.lock().unwrap_or_else(|e| e.into_inner()) };
    let _ = tx.send(value);
}
