//! Minimal reproducer: malformed allow markers.

pub fn sort(xs: &mut [f64]) {
    // lint:allow(total-float-ordering)
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn other(xs: &mut [f64]) {
    // lint:allow(no-such-rule) -- reason for a rule that does not exist
    xs.reverse();
}
