//! Minimal reproducer: each panicking construct on a serving path.

pub fn handle(values: &[f64], lookup: Option<u32>) -> f64 {
    let first = lookup.unwrap();
    let _ = first;
    let direct = values[0];
    if direct < 0.0 {
        panic!("negative");
    }
    direct
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v = [1.0];
        assert_eq!(v[0], Some(1.0).unwrap());
    }
}
