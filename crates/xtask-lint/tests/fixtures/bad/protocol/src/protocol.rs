//! Minimal reproducer: a protocol variant the dispatcher forgot.

pub enum Request {
    Ping { session: String },
    Shutdown,
}

pub enum RequestKind {
    Ping,
    Shutdown,
}
