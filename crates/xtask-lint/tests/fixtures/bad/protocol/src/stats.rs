pub struct RequestCounts {
    pub ping: u64,
}
