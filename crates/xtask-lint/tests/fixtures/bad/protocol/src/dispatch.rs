use crate::protocol::{Request, RequestKind};

pub fn handle(req: Request) {
    match req {
        Request::Ping { session } => drop(session),
        _ => {} // the wildcard hides the missing Shutdown arm
    }
    let _ = RequestKind::Ping;
}
