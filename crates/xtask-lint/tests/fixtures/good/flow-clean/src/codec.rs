pub fn frame(len: usize) -> Result<usize, ()> {
    len.checked_add(4).ok_or(())
}
