pub enum AppError {
    Io,
}

pub fn encode(e: &AppError) -> u8 {
    match e {
        AppError::Io => 1,
    }
}

pub fn fail() -> AppError {
    AppError::Io
}
