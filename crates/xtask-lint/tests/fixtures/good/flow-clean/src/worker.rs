use std::sync::mpsc::Sender;

pub enum Job {
    Ping { reply: Sender<u32> },
}

pub fn run(job: Job, c: &mut crate::stats::Counts) {
    match job {
        Job::Ping { reply } => {
            c.hits += 1;
            let _ = reply.send(1);
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn hits_counted() {
        let mut c = crate::stats::Counts { hits: 0 };
        let (tx, rx) = std::sync::mpsc::channel();
        super::run(super::Job::Ping { reply: tx }, &mut c);
        assert_eq!(c.hits, 1);
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
