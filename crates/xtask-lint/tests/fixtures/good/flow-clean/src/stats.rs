pub struct Counts {
    pub hits: u64,
}
