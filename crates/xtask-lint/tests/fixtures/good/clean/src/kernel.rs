//! Clean hot kernel plus one justified, used allow marker.

pub fn kernel(out: &mut [f64], src: &[f64]) {
    for (o, s) in out.iter_mut().zip(src) {
        *o = s * 2.0;
    }
}

pub fn ordered(xs: &mut [f64]) -> Option<f64> {
    // lint:allow(total-float-ordering) -- inputs validated finite by the caller
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs.first().copied()
}
