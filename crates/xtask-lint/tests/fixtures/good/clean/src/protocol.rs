pub enum Request {
    Ping { session: String },
    Shutdown,
}

pub enum RequestKind {
    Ping,
    Shutdown,
}
