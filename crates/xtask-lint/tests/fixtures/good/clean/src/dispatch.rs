use crate::protocol::{Request, RequestKind};

pub fn handle(req: Request) -> RequestKind {
    match req {
        Request::Ping { session } => {
            drop(session);
            RequestKind::Ping
        }
        Request::Shutdown => RequestKind::Shutdown,
    }
}
