pub struct RequestCounts {
    pub ping: u64,
    pub shutdown: u64,
}
