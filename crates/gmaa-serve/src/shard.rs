//! The shard worker: one thread owning a set of sessions.
//!
//! All requests for a session arrive on its shard's channel and are
//! handled strictly in order by the worker thread, so engines are never
//! shared or locked. The worker keeps live sessions up to a configured
//! cap; beyond it, the least-recently-used session is hibernated to a
//! [`SessionSnapshot`] and transparently rehydrated on its next request.
//!
//! With a [`SessionStore`] configured, durability rides the same paths:
//! every applied edit appends a journal record, eviction writes a
//! compacted snapshot to the store (and the snapshot leaves shard
//! memory), and a session recovered from a previous process is
//! rehydrated journal-over-snapshot on its next request.

use crate::admission::ShardGate;
use crate::protocol::{Request, RequestKind, Response, ServeError, SessionConfig, SessionSnapshot};
use crate::session::Session;
use crate::stats::{LoadStats, RequestCounts, ShardStats, StoreStats};
use crate::store::{JournalRecord, SessionStore, StoredSession};
use gmaa::CycleStats;
use maut_sense::{MonteCarlo, MonteCarloConfig, SolveStats};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message to a shard worker: an API request with its reply channel, or
/// an out-of-band stats/drain command.
pub(crate) enum Command {
    /// Handle `request` and send the outcome to `reply`. Boxed: a
    /// `CreateSession` carries a whole model, dwarfing the other
    /// variants.
    Api {
        request: Box<Request>,
        reply: Sender<Result<Response, ServeError>>,
        /// When admission reserved the queue slot — the deadline epoch.
        admitted: Instant,
        /// How long past `admitted` the request may wait in the queue
        /// before it is answered `DeadlineExceeded` instead of executed.
        deadline: Option<Duration>,
    },
    /// Report the shard's current counters.
    Stats { reply: Sender<ShardStats> },
    /// Flush every live session to the store (sessions stay live);
    /// replies with the number flushed.
    Drain {
        reply: Sender<Result<u64, ServeError>>,
    },
}

/// One shard's state, owned by its worker thread.
pub(crate) struct Shard {
    index: usize,
    /// Live-session cap; reaching it hibernates the LRU session.
    cap: usize,
    /// Settings applied to sessions created on this shard.
    session_config: SessionConfig,
    live: HashMap<String, Session>,
    /// Evicted snapshots kept in shard memory — only used when no store
    /// is configured (with a store they spill to it instead, keeping the
    /// shard's resident footprint bounded under session churn).
    hibernated: HashMap<String, SessionSnapshot>,
    /// The durable backend, if any. Shared across shards; the FNV
    /// routing guarantees no two shards address the same session.
    store: Option<Arc<dyn SessionStore>>,
    /// Sessions whose state lives only in the store (evicted there, or
    /// recovered from a previous process and not yet touched).
    stored: HashSet<String>,
    /// Logical clock for LRU ordering: bumped per request, stamped onto
    /// the touched session.
    clock: u64,
    counts: RequestCounts,
    sessions_created: u64,
    evictions: u64,
    rehydrations: u64,
    /// Engine counters of evicted/closed sessions, folded in at
    /// retirement so shard totals survive session churn.
    retired_cycles: CycleStats,
    retired_lp: SolveStats,
    store_stats: StoreStats,
    /// Worker service-time accounting: time spent inside `handle` and
    /// the number of requests that reached it.
    load: LoadStats,
    /// The admission gate shared with the manager's submit path: the
    /// manager increments its depth on admission, this worker releases
    /// at dequeue. `None` for bare shards driven directly in tests.
    gate: Option<Arc<ShardGate>>,
    /// The manager's shutdown flag: once up, queued API requests are
    /// answered `ServeError::Shutdown` instead of executed.
    stopping: Option<Arc<AtomicBool>>,
}

impl Shard {
    pub(crate) fn new(index: usize, cap: usize, session_config: SessionConfig) -> Shard {
        Shard {
            index,
            cap: cap.max(1),
            session_config,
            live: HashMap::new(),
            hibernated: HashMap::new(),
            store: None,
            stored: HashSet::new(),
            clock: 0,
            counts: RequestCounts::default(),
            sessions_created: 0,
            evictions: 0,
            rehydrations: 0,
            retired_cycles: CycleStats::default(),
            retired_lp: SolveStats::default(),
            store_stats: StoreStats::default(),
            load: LoadStats::default(),
            gate: None,
            stopping: None,
        }
    }

    /// Attach the manager's admission gate and shutdown flag (see the
    /// field docs). Bare shards in unit tests skip this.
    pub(crate) fn with_admission(
        mut self,
        gate: Arc<ShardGate>,
        stopping: Arc<AtomicBool>,
    ) -> Shard {
        self.gate = Some(gate);
        self.stopping = Some(stopping);
        self
    }

    /// Attach a durable store, seeding `recovered` — session names the
    /// manager's recovery enumeration routed to this shard. They are
    /// rehydrated lazily, journal-over-snapshot, on their next request.
    pub(crate) fn with_store(
        mut self,
        store: Arc<dyn SessionStore>,
        recovered: Vec<String>,
    ) -> Shard {
        self.store = Some(store);
        self.stored = recovered.into_iter().collect();
        self
    }

    /// The worker loop: handle commands until every sender is gone.
    pub(crate) fn run(mut self, commands: Receiver<Command>) {
        for command in commands {
            match command {
                Command::Api {
                    request,
                    reply,
                    admitted,
                    deadline,
                } => {
                    // The request left the queue: release its admission
                    // slot *before* the (possibly long) engine work, so
                    // queue depth measures waiting requests only.
                    if let Some(gate) = &self.gate {
                        gate.release();
                    }
                    let outcome = if self.is_stopping() {
                        // Shutdown beat this queued request: answer it
                        // with the typed error instead of executing (or
                        // silently dropping) it.
                        Err(ServeError::Shutdown)
                    } else if deadline.is_some_and(|d| admitted.elapsed() > d) {
                        // Queued past its deadline: the client has given
                        // up; don't burn engine time on it.
                        if let Some(gate) = &self.gate {
                            gate.count_deadline_rejection();
                        }
                        self.count(request.kind());
                        Err(ServeError::DeadlineExceeded)
                    } else {
                        self.handle(*request)
                    };
                    // A client that dropped its pending reply is not an
                    // error; the work is done either way.
                    let _ = reply.send(outcome);
                }
                Command::Stats { reply } => {
                    let _ = reply.send(self.stats());
                }
                Command::Drain { reply } => {
                    let _ = reply.send(self.drain());
                }
            }
        }
    }

    fn is_stopping(&self) -> bool {
        self.stopping
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Acquire))
    }

    fn count(&mut self, kind: RequestKind) {
        let slot = match kind {
            RequestKind::Create => &mut self.counts.create,
            RequestKind::SetPerf => &mut self.counts.set_perf,
            RequestKind::SetWeight => &mut self.counts.set_weight,
            RequestKind::Analyze => &mut self.counts.analyze,
            RequestKind::DiscardCycle => &mut self.counts.discard_cycle,
            RequestKind::MonteCarlo => &mut self.counts.monte_carlo,
            RequestKind::Snapshot => &mut self.counts.snapshot,
            RequestKind::Close => &mut self.counts.close,
        };
        *slot += 1;
    }

    /// Handle one request, accounting its wall-clock service time into
    /// [`LoadStats`] — the busy-time signal that distinguishes a whale
    /// tenant's shard from a minnow's at equal request counts.
    pub(crate) fn handle(&mut self, request: Request) -> Result<Response, ServeError> {
        let started = Instant::now();
        let outcome = self.dispatch(request);
        // A u64 of nanoseconds holds ~584 years of busy time; the
        // conversion saturates rather than truncates on the (absurd)
        // single-request overflow.
        self.load.busy_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.load.served_requests += 1;
        outcome
    }

    fn dispatch(&mut self, request: Request) -> Result<Response, ServeError> {
        self.count(request.kind());
        self.clock += 1;
        match request {
            Request::CreateSession { session, model } => {
                if self.live.contains_key(&session)
                    || self.hibernated.contains_key(&session)
                    || self.stored.contains(&session)
                {
                    return Err(ServeError::DuplicateSession(session));
                }
                let mut s = Session::new(model, self.session_config)?;
                s.last_used = self.clock;
                // With a store, the session is born durable: its initial
                // snapshot is written before the create is acknowledged,
                // so journal appends always follow a snapshot.
                if let Some(store) = self.store.clone() {
                    let snap = s.snapshot(&session)?;
                    match store.put_snapshot(&snap) {
                        Ok(()) => self.store_stats.snapshots_written += 1,
                        Err(e) => {
                            self.store_stats.store_errors += 1;
                            return Err(e.into());
                        }
                    }
                }
                self.make_room();
                self.live.insert(session, s);
                self.sessions_created += 1;
                Ok(Response::Created)
            }
            Request::CloseSession { session } => {
                let found = if let Some(s) = self.live.remove(&session) {
                    self.retire(&s);
                    true
                } else {
                    let hibernated = self.hibernated.remove(&session).is_some();
                    let stored = self.stored.remove(&session);
                    hibernated || stored
                };
                if !found {
                    return Err(ServeError::UnknownSession(session));
                }
                // Best effort: a failed store delete leaves an orphaned
                // entry (re-created names will collide at recovery), but
                // the close itself succeeded.
                if let Some(store) = self.store.clone() {
                    if store.remove(&session).is_err() {
                        self.store_stats.store_errors += 1;
                    }
                }
                Ok(Response::Closed)
            }
            Request::Snapshot { session } => {
                // A read-only probe: answer from whatever tier holds the
                // session without stamping `last_used` — a periodic
                // snapshot poller must not pin sessions resident or
                // reorder LRU eviction.
                if let Some(s) = self.live.get(&session) {
                    let snap = s.snapshot(&session)?;
                    Ok(Response::Snapshot(Box::new(snap)))
                } else if let Some(snap) = self.hibernated.get(&session) {
                    Ok(Response::Snapshot(Box::new(snap.clone())))
                } else if self.stored.contains(&session) {
                    let stored = self.store_load(&session)?;
                    let snap = if stored.journal.is_empty() && stored.torn_records == 0 {
                        stored.snapshot
                    } else {
                        // Pending journal records: materialize them into
                        // an ephemeral engine so the reported snapshot is
                        // the session's real state. Residency unchanged.
                        let mut s = Session::restore(&stored.snapshot, &session)?;
                        s.replay(&stored.journal)?;
                        s.snapshot(&session)?
                    };
                    Ok(Response::Snapshot(Box::new(snap)))
                } else {
                    Err(ServeError::UnknownSession(session))
                }
            }
            Request::SetPerf {
                session,
                alternative,
                attr,
                perf,
            } => {
                self.touch(&session)?
                    .engine
                    .set_perf(alternative, attr, perf)?;
                self.journal(&session, JournalRecord::SetPerf(alternative, attr, perf))?;
                Ok(Response::Edited)
            }
            Request::SetWeight {
                session,
                objective,
                weight,
            } => {
                self.touch(&session)?.engine.set_weight(objective, weight)?;
                self.journal(&session, JournalRecord::SetWeight(objective, weight))?;
                Ok(Response::Edited)
            }
            Request::Analyze { session } => {
                let s = self.touch(&session)?;
                Ok(Response::Analysis(Box::new(
                    s.engine.analyze_incremental()?,
                )))
            }
            Request::DiscardCycle { session } => {
                let s = self.touch(&session)?;
                Ok(Response::Cycle(Box::new(
                    s.engine.discard_cycle_incremental()?,
                )))
            }
            Request::MonteCarlo { session, trials } => {
                // Validate before touching the engine: MonteCarlo::new
                // asserts trials > 0, and a panic here would take down
                // the whole shard, not just this request.
                if trials == 0 {
                    return Err(ServeError::InvalidRequest(
                        "Monte Carlo needs at least one trial".to_string(),
                    ));
                }
                let s = self.touch(&session)?;
                let result = MonteCarlo::new(
                    MonteCarloConfig::ElicitedIntervals,
                    trials,
                    s.config.mc_seed,
                )
                .with_threads(s.config.mc_threads)
                .run_ctx(s.engine.context());
                Ok(Response::MonteCarlo(Box::new(result)))
            }
        }
    }

    /// Fetch a session for use, transparently rehydrating it (from the
    /// in-memory snapshot or the store) if it was evicted, and stamp its
    /// LRU clock.
    fn touch(&mut self, session: &str) -> Result<&mut Session, ServeError> {
        if !self.live.contains_key(session) {
            if let Some(snap) = self.hibernated.remove(session) {
                match Session::restore(&snap, session) {
                    Ok(s) => {
                        self.make_room();
                        self.rehydrations += 1;
                        self.live.insert(session.to_string(), s);
                    }
                    Err(e) => {
                        // Keep the snapshot: a transient failure must not
                        // destroy the session.
                        self.hibernated.insert(session.to_string(), snap);
                        return Err(e);
                    }
                }
            } else if self.stored.contains(session) {
                // Store-backed rehydration: restore the compacted
                // snapshot, then replay the journaled edits on top. Any
                // failure leaves the `stored` entry (and the store state)
                // untouched for a later retry.
                let stored = self.store_load(session)?;
                let mut s = Session::restore(&stored.snapshot, session)?;
                s.replay(&stored.journal)?;
                self.store_stats.records_replayed += stored.journal.len() as u64;
                self.store_stats.torn_records_dropped += stored.torn_records;
                self.store_stats.sessions_recovered += 1;
                self.make_room();
                self.rehydrations += 1;
                self.stored.remove(session);
                self.live.insert(session.to_string(), s);
            } else {
                return Err(ServeError::UnknownSession(session.to_string()));
            }
        }
        match self.live.get_mut(session) {
            Some(s) => {
                s.last_used = self.clock;
                Ok(s)
            }
            // Unreachable after the insert above; if the invariant ever
            // breaks, fail this one request instead of killing the shard.
            None => Err(ServeError::Internal(format!(
                "session {session:?} vanished between rehydration and touch"
            ))),
        }
    }

    /// Hibernate LRU sessions until there is room for one more live
    /// session. With a store, the compacted snapshot spills there and
    /// leaves shard memory entirely; without one, it parks in
    /// `hibernated`.
    fn make_room(&mut self) {
        while self.live.len() >= self.cap {
            let Some(victim) = self
                .live
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(name, _)| name.clone())
            else {
                return;
            };
            // The victim came out of `self.live` one statement ago; if it
            // is somehow gone, there is nothing to evict.
            let Some(s) = self.live.remove(&victim) else {
                return;
            };
            let snap = match s.snapshot(&victim) {
                Ok(snap) => snap,
                Err(_) => {
                    // Refusing to evict beats losing the session; stay
                    // over cap until a snapshot succeeds.
                    self.live.insert(victim, s);
                    return;
                }
            };
            if let Some(store) = self.store.clone() {
                match store.put_snapshot(&snap) {
                    Ok(()) => {
                        self.store_stats.snapshots_written += 1;
                        self.retire(&s);
                        self.stored.insert(victim);
                        self.evictions += 1;
                    }
                    Err(_) => {
                        self.store_stats.store_errors += 1;
                        self.live.insert(victim, s);
                        return;
                    }
                }
            } else {
                self.retire(&s);
                self.hibernated.insert(victim, snap);
                self.evictions += 1;
            }
        }
    }

    /// Append one applied edit to the session's write-ahead journal. A
    /// failed append degrades to writing a full compacted snapshot (the
    /// in-memory model already carries the edit); only when both paths
    /// fail does the edit surface a store error — the in-memory session
    /// still holds the edit either way.
    fn journal(&mut self, session: &str, record: JournalRecord) -> Result<(), ServeError> {
        let Some(store) = self.store.clone() else {
            return Ok(());
        };
        match store.append(session, &record) {
            Ok(()) => {
                self.store_stats.journal_appends += 1;
                Ok(())
            }
            Err(_) => {
                self.store_stats.store_errors += 1;
                let snap = match self.live.get(session) {
                    Some(s) => s.snapshot(session)?,
                    None => {
                        return Err(ServeError::Internal(format!(
                            "session {session:?} vanished between edit and journal"
                        )))
                    }
                };
                match store.put_snapshot(&snap) {
                    Ok(()) => {
                        self.store_stats.snapshots_written += 1;
                        Ok(())
                    }
                    Err(e) => {
                        self.store_stats.store_errors += 1;
                        Err(e.into())
                    }
                }
            }
        }
    }

    /// Load a session's stored state, verifying it was filed under the
    /// right name before anything is served from it.
    fn store_load(&mut self, session: &str) -> Result<StoredSession, ServeError> {
        let Some(store) = self.store.clone() else {
            return Err(ServeError::Internal(format!(
                "session {session:?} is marked stored but the shard has no store"
            )));
        };
        match store.load(session) {
            Ok(Some(stored)) => {
                if stored.snapshot.session == session {
                    Ok(stored)
                } else {
                    Err(ServeError::Snapshot(format!(
                        "snapshot identity mismatch: loaded under {session:?} but records \
                         session {:?}",
                        stored.snapshot.session
                    )))
                }
            }
            Ok(None) => Err(ServeError::UnknownSession(session.to_string())),
            Err(e) => {
                self.store_stats.store_errors += 1;
                Err(e.into())
            }
        }
    }

    /// Flush every live session's current state to the store as a
    /// compacted snapshot and sync — graceful shutdown. Sessions stay
    /// live and serving. Returns the number flushed; all sessions are
    /// attempted before the first error (if any) is reported.
    pub(crate) fn drain(&mut self) -> Result<u64, ServeError> {
        let Some(store) = self.store.clone() else {
            return Ok(0);
        };
        let mut names: Vec<String> = self.live.keys().cloned().collect();
        names.sort_unstable();
        let mut flushed = 0u64;
        let mut first_err: Option<ServeError> = None;
        for name in names {
            let Some(s) = self.live.get(&name) else {
                continue;
            };
            let outcome = s
                .snapshot(&name)
                .and_then(|snap| store.put_snapshot(&snap).map_err(ServeError::from));
            match outcome {
                Ok(()) => {
                    self.store_stats.snapshots_written += 1;
                    flushed += 1;
                }
                Err(e) => {
                    self.store_stats.store_errors += 1;
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Err(e) = store.sync() {
            self.store_stats.store_errors += 1;
            first_err.get_or_insert(e.into());
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(flushed),
        }
    }

    /// Fold a departing session's engine counters into the shard totals.
    fn retire(&mut self, s: &Session) {
        let cycles = s.engine.cycle_stats();
        self.retired_cycles.incremental += cycles.incremental;
        self.retired_cycles.full += cycles.full;
        self.retired_lp.merge(&s.engine.lp_stats());
    }

    /// The shard's counters right now: retired accumulations plus the
    /// live engines' current counters.
    pub(crate) fn stats(&self) -> ShardStats {
        let mut cycles = self.retired_cycles;
        let mut lp = self.retired_lp;
        for s in self.live.values() {
            let c = s.engine.cycle_stats();
            cycles.incremental += c.incremental;
            cycles.full += c.full;
            lp.merge(&s.engine.lp_stats());
        }
        let (queued_now, queue_high_water, rejected_overload, rejected_quota, rejected_deadline) =
            match &self.gate {
                Some(g) => (
                    g.queued_now(),
                    g.queue_high_water(),
                    g.rejected_overload(),
                    g.rejected_quota(),
                    g.rejected_deadline(),
                ),
                None => (0, 0, 0, 0, 0),
            };
        ShardStats {
            shard: self.index,
            live_sessions: self.live.len(),
            hibernated_sessions: self.hibernated.len(),
            stored_sessions: self.stored.len(),
            sessions_created: self.sessions_created,
            evictions: self.evictions,
            rehydrations: self.rehydrations,
            queued_now,
            queue_high_water,
            rejected_overload,
            rejected_quota,
            rejected_deadline,
            requests: self.counts,
            cycles,
            lp,
            store: self.store_stats,
            load: self.load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maut::prelude::*;

    fn model() -> maut::DecisionModel {
        let mut b = DecisionModelBuilder::new("m");
        let x = b.discrete_attribute("x", "X", &["l", "m", "h"]);
        let y = b.discrete_attribute("y", "Y", &["l", "m", "h"]);
        b.attach_attributes_to_root(&[(x, Interval::new(0.4, 0.6)), (y, Interval::new(0.4, 0.6))]);
        b.alternative("a", vec![Perf::level(2), Perf::level(1)]);
        b.alternative("b", vec![Perf::level(0), Perf::level(2)]);
        b.alternative("c", vec![Perf::level(1), Perf::Missing]);
        b.build().unwrap()
    }

    fn create(shard: &mut Shard, name: &str) {
        let r = shard.handle(Request::CreateSession {
            session: name.into(),
            model: model(),
        });
        assert!(matches!(r, Ok(Response::Created)));
    }

    #[test]
    fn load_accounting_tracks_handled_requests() {
        let mut shard = Shard::new(0, 4, SessionConfig::default());
        create(&mut shard, "s");
        let r = shard.handle(Request::Analyze {
            session: "s".into(),
        });
        assert!(r.is_ok());
        // Failed requests consume engine time too and must be counted.
        let r = shard.handle(Request::Analyze {
            session: "missing".into(),
        });
        assert!(r.is_err());
        let stats = shard.stats();
        assert_eq!(stats.load.served_requests, 3);
        assert!(stats.load.busy_ns > 0, "handling took measurable time");
        assert!(stats.load.mean_service_ns().is_some());
        // Served requests never exceed the per-kind counts: admission
        // rejections and queue-level deadline expiries bypass `handle`.
        assert!(stats.load.served_requests <= stats.requests.total());
    }

    #[test]
    fn create_analyze_close_lifecycle() {
        let mut shard = Shard::new(
            0,
            4,
            SessionConfig {
                mc_trials: 50,
                stability_resolution: 20,
                ..SessionConfig::default()
            },
        );
        create(&mut shard, "s");
        assert!(matches!(
            shard.handle(Request::CreateSession {
                session: "s".into(),
                model: model(),
            }),
            Err(ServeError::DuplicateSession(_))
        ));
        let r = shard.handle(Request::Analyze {
            session: "s".into(),
        });
        assert!(matches!(r, Ok(Response::Analysis(_))));
        let objective = model().tree.find("x").unwrap();
        assert!(matches!(
            shard.handle(Request::SetWeight {
                session: "s".into(),
                objective,
                weight: Interval::new(0.3, 0.7),
            }),
            Ok(Response::Edited)
        ));
        assert!(matches!(
            shard.handle(Request::CloseSession {
                session: "s".into()
            }),
            Ok(Response::Closed)
        ));
        assert!(matches!(
            shard.handle(Request::Analyze {
                session: "s".into()
            }),
            Err(ServeError::UnknownSession(_))
        ));
        let stats = shard.stats();
        assert_eq!(stats.requests.create, 2);
        assert_eq!(stats.requests.analyze, 2);
        assert_eq!(stats.requests.set_weight, 1);
        assert_eq!(stats.requests.close, 1);
        assert_eq!(stats.live_sessions, 0);
        // The closed session's cycle counters were retired, not lost.
        assert_eq!(stats.cycles.full, 1);
    }

    #[test]
    fn lru_eviction_hibernates_and_rehydrates() {
        let mut shard = Shard::new(0, 2, SessionConfig::default());
        create(&mut shard, "a");
        create(&mut shard, "b");
        // Touch "a" so "b" is the LRU victim when "c" arrives.
        let x = model().find_attribute("x").unwrap();
        shard
            .handle(Request::SetPerf {
                session: "a".into(),
                alternative: 0,
                attr: x,
                perf: Perf::level(0),
            })
            .unwrap();
        create(&mut shard, "c");
        let stats = shard.stats();
        assert_eq!(stats.live_sessions, 2);
        assert_eq!(stats.hibernated_sessions, 1);
        assert_eq!(stats.evictions, 1);
        // "b" comes back transparently (and "a", the new LRU, hibernates).
        assert!(matches!(
            shard.handle(Request::DiscardCycle {
                session: "b".into()
            }),
            Ok(Response::Cycle(_))
        ));
        let stats = shard.stats();
        assert_eq!(stats.rehydrations, 1);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.live_sessions, 2);
        assert_eq!(stats.hibernated_sessions, 1);
    }

    #[test]
    fn rejected_edits_do_not_corrupt_the_session() {
        let mut shard = Shard::new(0, 4, SessionConfig::default());
        create(&mut shard, "s");
        let x = model().find_attribute("x").unwrap();
        assert!(matches!(
            shard.handle(Request::SetPerf {
                session: "s".into(),
                alternative: 0,
                attr: x,
                perf: Perf::level(9),
            }),
            Err(ServeError::Model(_))
        ));
        assert!(matches!(
            shard.handle(Request::DiscardCycle {
                session: "s".into()
            }),
            Ok(Response::Cycle(_))
        ));
    }

    #[test]
    fn zero_trial_monte_carlo_is_rejected_not_fatal() {
        // Regression: MonteCarlo::new asserts trials > 0; an unvalidated
        // request would panic the worker and take the whole shard down.
        let mut shard = Shard::new(0, 4, SessionConfig::default());
        create(&mut shard, "s");
        assert!(matches!(
            shard.handle(Request::MonteCarlo {
                session: "s".into(),
                trials: 0,
            }),
            Err(ServeError::InvalidRequest(_))
        ));
        // The session still serves.
        assert!(matches!(
            shard.handle(Request::MonteCarlo {
                session: "s".into(),
                trials: 10,
            }),
            Ok(Response::MonteCarlo(_))
        ));
    }

    #[test]
    fn snapshot_probe_is_lru_neutral() {
        // Regression: Snapshot used to stamp `last_used` on live
        // sessions, so a periodic snapshot poller would pin the polled
        // session resident and silently shift eviction onto the wrong
        // victim. A read-only probe must not change the next victim.
        let mut shard = Shard::new(0, 2, SessionConfig::default());
        create(&mut shard, "a");
        create(&mut shard, "b");
        // "a" is LRU. Poll it; it must STAY the victim.
        assert!(matches!(
            shard.handle(Request::Snapshot {
                session: "a".into()
            }),
            Ok(Response::Snapshot(_))
        ));
        create(&mut shard, "c");
        assert!(
            shard.hibernated.contains_key("a"),
            "snapshot probe changed the eviction victim"
        );
        assert!(shard.live.contains_key("b") && shard.live.contains_key("c"));
        // And the probed-then-evicted session still serves.
        assert!(matches!(
            shard.handle(Request::Analyze {
                session: "a".into()
            }),
            Ok(Response::Analysis(_))
        ));
    }

    #[test]
    fn store_bounds_resident_snapshots_under_churn() {
        // Regression: without a store, `hibernated` grows without bound
        // under create-then-idle churn. With one, evicted snapshots
        // spill to the store and leave shard memory.
        let store = std::sync::Arc::new(crate::store::MemoryStore::new());
        let mut shard =
            Shard::new(0, 4, SessionConfig::default()).with_store(store.clone(), Vec::new());
        for i in 0..50 {
            create(&mut shard, &format!("s{i}"));
        }
        let stats = shard.stats();
        assert_eq!(stats.live_sessions, 4);
        assert_eq!(
            stats.hibernated_sessions, 0,
            "snapshots left in shard memory"
        );
        assert_eq!(stats.stored_sessions, 46);
        assert_eq!(stats.evictions, 46);
        assert_eq!(store.sessions().unwrap().len(), 50);
    }

    #[test]
    fn store_eviction_and_rehydration_round_trip() {
        let store = std::sync::Arc::new(crate::store::MemoryStore::new());
        let mut shard = Shard::new(0, 1, SessionConfig::default()).with_store(store, Vec::new());
        create(&mut shard, "a");
        let x = model().find_attribute("x").unwrap();
        shard
            .handle(Request::SetPerf {
                session: "a".into(),
                alternative: 0,
                attr: x,
                perf: Perf::level(0),
            })
            .unwrap();
        assert_eq!(shard.stats().store.journal_appends, 1);

        create(&mut shard, "b"); // evicts "a" to the store, compacting
        let stats = shard.stats();
        assert_eq!(stats.stored_sessions, 1);
        assert_eq!(stats.hibernated_sessions, 0);

        // Probing the stored session is possible without rehydration...
        let probed = match shard.handle(Request::Snapshot {
            session: "a".into(),
        }) {
            Ok(Response::Snapshot(s)) => s,
            other => panic!("expected snapshot, got {other:?}"),
        };
        assert_eq!(shard.stats().rehydrations, 0);

        // ...and touching it rehydrates from the store with the edit.
        assert!(matches!(
            shard.handle(Request::Analyze {
                session: "a".into()
            }),
            Ok(Response::Analysis(_))
        ));
        let live_snap = match shard.handle(Request::Snapshot {
            session: "a".into(),
        }) {
            Ok(Response::Snapshot(s)) => s,
            other => panic!("expected snapshot, got {other:?}"),
        };
        assert_eq!(*probed, *live_snap);
        let stats = shard.stats();
        assert_eq!(stats.rehydrations, 1);
        assert_eq!(stats.store.sessions_recovered, 1);
        assert_eq!(stats.store.store_errors, 0);
    }

    #[test]
    fn drain_flushes_live_sessions_and_keeps_them_live() {
        let store = std::sync::Arc::new(crate::store::MemoryStore::new());
        let mut shard =
            Shard::new(0, 4, SessionConfig::default()).with_store(store.clone(), Vec::new());
        create(&mut shard, "a");
        create(&mut shard, "b");
        let x = model().find_attribute("x").unwrap();
        shard
            .handle(Request::SetPerf {
                session: "a".into(),
                alternative: 1,
                attr: x,
                perf: Perf::level(2),
            })
            .unwrap();
        assert_eq!(shard.drain().unwrap(), 2);
        assert_eq!(shard.stats().live_sessions, 2);
        // The drained snapshot is compacted: the journal is empty and the
        // stored model carries the edit.
        let stored = store.load("a").unwrap().unwrap();
        assert!(stored.journal.is_empty());
        let direct = shard.live.get("a").unwrap().snapshot("a").unwrap();
        assert_eq!(stored.snapshot, direct);
        // Without a store, drain is a no-op.
        let mut plain = Shard::new(0, 4, SessionConfig::default());
        create(&mut plain, "x");
        assert_eq!(plain.drain().unwrap(), 0);
    }

    #[test]
    fn snapshot_answers_from_live_and_hibernated_state() {
        let mut shard = Shard::new(0, 1, SessionConfig::default());
        create(&mut shard, "a");
        let live_snap = match shard.handle(Request::Snapshot {
            session: "a".into(),
        }) {
            Ok(Response::Snapshot(s)) => s,
            other => panic!("expected snapshot, got {other:?}"),
        };
        create(&mut shard, "b"); // evicts "a"
        assert_eq!(shard.stats().hibernated_sessions, 1);
        let hib_snap = match shard.handle(Request::Snapshot {
            session: "a".into(),
        }) {
            Ok(Response::Snapshot(s)) => s,
            other => panic!("expected snapshot, got {other:?}"),
        };
        assert_eq!(*live_snap, *hib_snap);
        // Reading a hibernated session's snapshot does not rehydrate it.
        assert_eq!(shard.stats().rehydrations, 0);
    }
}
