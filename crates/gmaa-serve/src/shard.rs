//! The shard worker: one thread owning a set of sessions.
//!
//! All requests for a session arrive on its shard's channel and are
//! handled strictly in order by the worker thread, so engines are never
//! shared or locked. The worker keeps live sessions up to a configured
//! cap; beyond it, the least-recently-used session is hibernated to a
//! [`SessionSnapshot`] and transparently rehydrated on its next request.

use crate::protocol::{Request, RequestKind, Response, ServeError, SessionConfig, SessionSnapshot};
use crate::session::Session;
use crate::stats::{RequestCounts, ShardStats};
use gmaa::CycleStats;
use maut_sense::{MonteCarlo, MonteCarloConfig, SolveStats};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};

/// A message to a shard worker: an API request with its reply channel, or
/// an out-of-band stats probe.
pub(crate) enum Command {
    /// Handle `request` and send the outcome to `reply`. Boxed: a
    /// `CreateSession` carries a whole model, dwarfing the other
    /// variants.
    Api {
        request: Box<Request>,
        reply: Sender<Result<Response, ServeError>>,
    },
    /// Report the shard's current counters.
    Stats { reply: Sender<ShardStats> },
}

/// One shard's state, owned by its worker thread.
pub(crate) struct Shard {
    index: usize,
    /// Live-session cap; reaching it hibernates the LRU session.
    cap: usize,
    /// Settings applied to sessions created on this shard.
    session_config: SessionConfig,
    live: HashMap<String, Session>,
    hibernated: HashMap<String, SessionSnapshot>,
    /// Logical clock for LRU ordering: bumped per request, stamped onto
    /// the touched session.
    clock: u64,
    counts: RequestCounts,
    sessions_created: u64,
    evictions: u64,
    rehydrations: u64,
    /// Engine counters of evicted/closed sessions, folded in at
    /// retirement so shard totals survive session churn.
    retired_cycles: CycleStats,
    retired_lp: SolveStats,
}

impl Shard {
    pub(crate) fn new(index: usize, cap: usize, session_config: SessionConfig) -> Shard {
        Shard {
            index,
            cap: cap.max(1),
            session_config,
            live: HashMap::new(),
            hibernated: HashMap::new(),
            clock: 0,
            counts: RequestCounts::default(),
            sessions_created: 0,
            evictions: 0,
            rehydrations: 0,
            retired_cycles: CycleStats::default(),
            retired_lp: SolveStats::default(),
        }
    }

    /// The worker loop: handle commands until every sender is gone.
    pub(crate) fn run(mut self, commands: Receiver<Command>) {
        for command in commands {
            match command {
                Command::Api { request, reply } => {
                    // A client that dropped its pending reply is not an
                    // error; the work is done either way.
                    let _ = reply.send(self.handle(*request));
                }
                Command::Stats { reply } => {
                    let _ = reply.send(self.stats());
                }
            }
        }
    }

    fn count(&mut self, kind: RequestKind) {
        let slot = match kind {
            RequestKind::Create => &mut self.counts.create,
            RequestKind::SetPerf => &mut self.counts.set_perf,
            RequestKind::SetWeight => &mut self.counts.set_weight,
            RequestKind::Analyze => &mut self.counts.analyze,
            RequestKind::DiscardCycle => &mut self.counts.discard_cycle,
            RequestKind::MonteCarlo => &mut self.counts.monte_carlo,
            RequestKind::Snapshot => &mut self.counts.snapshot,
            RequestKind::Close => &mut self.counts.close,
        };
        *slot += 1;
    }

    pub(crate) fn handle(&mut self, request: Request) -> Result<Response, ServeError> {
        self.count(request.kind());
        self.clock += 1;
        match request {
            Request::CreateSession { session, model } => {
                if self.live.contains_key(&session) || self.hibernated.contains_key(&session) {
                    return Err(ServeError::DuplicateSession(session));
                }
                let mut s = Session::new(model, self.session_config)?;
                s.last_used = self.clock;
                self.make_room();
                self.live.insert(session, s);
                self.sessions_created += 1;
                Ok(Response::Created)
            }
            Request::CloseSession { session } => {
                if let Some(s) = self.live.remove(&session) {
                    self.retire(&s);
                    Ok(Response::Closed)
                } else if self.hibernated.remove(&session).is_some() {
                    Ok(Response::Closed)
                } else {
                    Err(ServeError::UnknownSession(session))
                }
            }
            Request::Snapshot { session } => {
                // Hibernated sessions answer from their stored snapshot —
                // no rehydration needed to read state.
                if let Some(s) = self.live.get_mut(&session) {
                    s.last_used = self.clock;
                    let snap = s.snapshot(&session)?;
                    Ok(Response::Snapshot(Box::new(snap)))
                } else if let Some(snap) = self.hibernated.get(&session) {
                    Ok(Response::Snapshot(Box::new(snap.clone())))
                } else {
                    Err(ServeError::UnknownSession(session))
                }
            }
            Request::SetPerf {
                session,
                alternative,
                attr,
                perf,
            } => {
                let s = self.touch(&session)?;
                s.engine.set_perf(alternative, attr, perf)?;
                Ok(Response::Edited)
            }
            Request::SetWeight {
                session,
                objective,
                weight,
            } => {
                let s = self.touch(&session)?;
                s.engine.set_weight(objective, weight)?;
                Ok(Response::Edited)
            }
            Request::Analyze { session } => {
                let s = self.touch(&session)?;
                Ok(Response::Analysis(Box::new(
                    s.engine.analyze_incremental()?,
                )))
            }
            Request::DiscardCycle { session } => {
                let s = self.touch(&session)?;
                Ok(Response::Cycle(Box::new(
                    s.engine.discard_cycle_incremental()?,
                )))
            }
            Request::MonteCarlo { session, trials } => {
                // Validate before touching the engine: MonteCarlo::new
                // asserts trials > 0, and a panic here would take down
                // the whole shard, not just this request.
                if trials == 0 {
                    return Err(ServeError::InvalidRequest(
                        "Monte Carlo needs at least one trial".to_string(),
                    ));
                }
                let s = self.touch(&session)?;
                let result = MonteCarlo::new(
                    MonteCarloConfig::ElicitedIntervals,
                    trials,
                    s.config.mc_seed,
                )
                .with_threads(s.config.mc_threads)
                .run_ctx(s.engine.context());
                Ok(Response::MonteCarlo(Box::new(result)))
            }
        }
    }

    /// Fetch a session for use, transparently rehydrating it from its
    /// snapshot if it was evicted, and stamp its LRU clock.
    fn touch(&mut self, session: &str) -> Result<&mut Session, ServeError> {
        if !self.live.contains_key(session) {
            let snap = self
                .hibernated
                .remove(session)
                .ok_or_else(|| ServeError::UnknownSession(session.to_string()))?;
            match Session::restore(&snap) {
                Ok(s) => {
                    self.make_room();
                    self.rehydrations += 1;
                    self.live.insert(session.to_string(), s);
                }
                Err(e) => {
                    // Keep the snapshot: a transient failure must not
                    // destroy the session.
                    self.hibernated.insert(session.to_string(), snap);
                    return Err(e);
                }
            }
        }
        match self.live.get_mut(session) {
            Some(s) => {
                s.last_used = self.clock;
                Ok(s)
            }
            // Unreachable after the insert above; if the invariant ever
            // breaks, fail this one request instead of killing the shard.
            None => Err(ServeError::Internal(format!(
                "session {session:?} vanished between rehydration and touch"
            ))),
        }
    }

    /// Hibernate LRU sessions until there is room for one more live
    /// session.
    fn make_room(&mut self) {
        while self.live.len() >= self.cap {
            let Some(victim) = self
                .live
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(name, _)| name.clone())
            else {
                return;
            };
            // The victim came out of `self.live` one statement ago; if it
            // is somehow gone, there is nothing to evict.
            let Some(s) = self.live.remove(&victim) else {
                return;
            };
            match s.snapshot(&victim) {
                Ok(snap) => {
                    self.retire(&s);
                    self.hibernated.insert(victim, snap);
                    self.evictions += 1;
                }
                Err(_) => {
                    // Refusing to evict beats losing the session; stay
                    // over cap until a snapshot succeeds.
                    self.live.insert(victim, s);
                    return;
                }
            }
        }
    }

    /// Fold a departing session's engine counters into the shard totals.
    fn retire(&mut self, s: &Session) {
        let cycles = s.engine.cycle_stats();
        self.retired_cycles.incremental += cycles.incremental;
        self.retired_cycles.full += cycles.full;
        self.retired_lp.merge(&s.engine.lp_stats());
    }

    /// The shard's counters right now: retired accumulations plus the
    /// live engines' current counters.
    pub(crate) fn stats(&self) -> ShardStats {
        let mut cycles = self.retired_cycles;
        let mut lp = self.retired_lp;
        for s in self.live.values() {
            let c = s.engine.cycle_stats();
            cycles.incremental += c.incremental;
            cycles.full += c.full;
            lp.merge(&s.engine.lp_stats());
        }
        ShardStats {
            shard: self.index,
            live_sessions: self.live.len(),
            hibernated_sessions: self.hibernated.len(),
            sessions_created: self.sessions_created,
            evictions: self.evictions,
            rehydrations: self.rehydrations,
            requests: self.counts,
            cycles,
            lp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maut::prelude::*;

    fn model() -> maut::DecisionModel {
        let mut b = DecisionModelBuilder::new("m");
        let x = b.discrete_attribute("x", "X", &["l", "m", "h"]);
        let y = b.discrete_attribute("y", "Y", &["l", "m", "h"]);
        b.attach_attributes_to_root(&[(x, Interval::new(0.4, 0.6)), (y, Interval::new(0.4, 0.6))]);
        b.alternative("a", vec![Perf::level(2), Perf::level(1)]);
        b.alternative("b", vec![Perf::level(0), Perf::level(2)]);
        b.alternative("c", vec![Perf::level(1), Perf::Missing]);
        b.build().unwrap()
    }

    fn create(shard: &mut Shard, name: &str) {
        let r = shard.handle(Request::CreateSession {
            session: name.into(),
            model: model(),
        });
        assert!(matches!(r, Ok(Response::Created)));
    }

    #[test]
    fn create_analyze_close_lifecycle() {
        let mut shard = Shard::new(
            0,
            4,
            SessionConfig {
                mc_trials: 50,
                stability_resolution: 20,
                ..SessionConfig::default()
            },
        );
        create(&mut shard, "s");
        assert!(matches!(
            shard.handle(Request::CreateSession {
                session: "s".into(),
                model: model(),
            }),
            Err(ServeError::DuplicateSession(_))
        ));
        let r = shard.handle(Request::Analyze {
            session: "s".into(),
        });
        assert!(matches!(r, Ok(Response::Analysis(_))));
        assert!(matches!(
            shard.handle(Request::CloseSession {
                session: "s".into()
            }),
            Ok(Response::Closed)
        ));
        assert!(matches!(
            shard.handle(Request::Analyze {
                session: "s".into()
            }),
            Err(ServeError::UnknownSession(_))
        ));
        let stats = shard.stats();
        assert_eq!(stats.requests.create, 2);
        assert_eq!(stats.requests.analyze, 2);
        assert_eq!(stats.requests.close, 1);
        assert_eq!(stats.live_sessions, 0);
        // The closed session's cycle counters were retired, not lost.
        assert_eq!(stats.cycles.full, 1);
    }

    #[test]
    fn lru_eviction_hibernates_and_rehydrates() {
        let mut shard = Shard::new(0, 2, SessionConfig::default());
        create(&mut shard, "a");
        create(&mut shard, "b");
        // Touch "a" so "b" is the LRU victim when "c" arrives.
        let x = model().find_attribute("x").unwrap();
        shard
            .handle(Request::SetPerf {
                session: "a".into(),
                alternative: 0,
                attr: x,
                perf: Perf::level(0),
            })
            .unwrap();
        create(&mut shard, "c");
        let stats = shard.stats();
        assert_eq!(stats.live_sessions, 2);
        assert_eq!(stats.hibernated_sessions, 1);
        assert_eq!(stats.evictions, 1);
        // "b" comes back transparently (and "a", the new LRU, hibernates).
        assert!(matches!(
            shard.handle(Request::DiscardCycle {
                session: "b".into()
            }),
            Ok(Response::Cycle(_))
        ));
        let stats = shard.stats();
        assert_eq!(stats.rehydrations, 1);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.live_sessions, 2);
        assert_eq!(stats.hibernated_sessions, 1);
    }

    #[test]
    fn rejected_edits_do_not_corrupt_the_session() {
        let mut shard = Shard::new(0, 4, SessionConfig::default());
        create(&mut shard, "s");
        let x = model().find_attribute("x").unwrap();
        assert!(matches!(
            shard.handle(Request::SetPerf {
                session: "s".into(),
                alternative: 0,
                attr: x,
                perf: Perf::level(9),
            }),
            Err(ServeError::Model(_))
        ));
        assert!(matches!(
            shard.handle(Request::DiscardCycle {
                session: "s".into()
            }),
            Ok(Response::Cycle(_))
        ));
    }

    #[test]
    fn zero_trial_monte_carlo_is_rejected_not_fatal() {
        // Regression: MonteCarlo::new asserts trials > 0; an unvalidated
        // request would panic the worker and take the whole shard down.
        let mut shard = Shard::new(0, 4, SessionConfig::default());
        create(&mut shard, "s");
        assert!(matches!(
            shard.handle(Request::MonteCarlo {
                session: "s".into(),
                trials: 0,
            }),
            Err(ServeError::InvalidRequest(_))
        ));
        // The session still serves.
        assert!(matches!(
            shard.handle(Request::MonteCarlo {
                session: "s".into(),
                trials: 10,
            }),
            Ok(Response::MonteCarlo(_))
        ));
    }

    #[test]
    fn snapshot_answers_from_live_and_hibernated_state() {
        let mut shard = Shard::new(0, 1, SessionConfig::default());
        create(&mut shard, "a");
        let live_snap = match shard.handle(Request::Snapshot {
            session: "a".into(),
        }) {
            Ok(Response::Snapshot(s)) => s,
            other => panic!("expected snapshot, got {other:?}"),
        };
        create(&mut shard, "b"); // evicts "a"
        assert_eq!(shard.stats().hibernated_sessions, 1);
        let hib_snap = match shard.handle(Request::Snapshot {
            session: "a".into(),
        }) {
            Ok(Response::Snapshot(s)) => s,
            other => panic!("expected snapshot, got {other:?}"),
        };
        assert_eq!(*live_snap, *hib_snap);
        // Reading a hibernated session's snapshot does not rehydrate it.
        assert_eq!(shard.stats().rehydrations, 0);
    }
}
