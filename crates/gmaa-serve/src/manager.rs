//! The [`SessionManager`]: shard spawning, deterministic routing, and the
//! synchronous / pipelined client API.

use crate::admission::{ShardGate, TenantQuota, TokenBuckets};
use crate::protocol::{Request, Response, ServeError, SessionConfig};
use crate::shard::{Command, Shard};
use crate::stats::{ServeStats, ShardStats};
use crate::store::SessionStore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A store handle plus the recovered session names, pre-partitioned by
/// owning shard index (FNV routing), handed to each spawned worker.
type StoreHandoff = (Arc<dyn SessionStore>, Vec<Vec<String>>);

/// Service-level settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Worker threads / shards. Each shard exclusively owns the sessions
    /// that hash to it.
    pub shards: usize,
    /// Live sessions a shard keeps resident before hibernating its
    /// least-recently-used one. Total resident capacity is
    /// `shards × max_sessions_per_shard`.
    pub max_sessions_per_shard: usize,
    /// Admission cap per shard: at most this many admitted requests may
    /// sit in a shard's queue at once; past it, `submit` sheds the
    /// request with [`ServeError::Overloaded`] instead of queueing
    /// (zero is treated as 1 — a zero-capacity service could never
    /// admit anything).
    pub queue_capacity: usize,
    /// Per-tenant token-bucket quota, keyed by session name. `None`
    /// (the default) disables quota checks.
    pub quota: Option<TenantQuota>,
    /// Deadline applied to every `submit`/`request` in milliseconds,
    /// measured from admission: a request still queued past it is
    /// answered [`ServeError::DeadlineExceeded`] without touching the
    /// engine. `None` (the default) disables deadlines;
    /// [`SessionManager::submit_with_deadline`] overrides per request.
    pub default_deadline_ms: Option<u64>,
    /// Settings applied to every created session.
    pub session: SessionConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_sessions_per_shard: 64,
            queue_capacity: 1024,
            quota: None,
            default_deadline_ms: None,
            session: SessionConfig::default(),
        }
    }
}

/// FNV-1a, the stable hash behind shard routing: the same session name
/// maps to the same shard in every process, on every platform, forever —
/// a prerequisite for routing decisions that outlive one manager (e.g.
/// snapshot stores partitioned by shard).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A reply that has been routed but not yet waited on — the pipelining
/// handle: submit a batch of requests to several shards, then collect.
#[derive(Debug)]
pub struct Pending {
    rx: Receiver<Result<Response, ServeError>>,
}

impl Pending {
    /// Block until the owning shard worker replies.
    ///
    /// A request still queued when the manager shuts down resolves to
    /// [`ServeError::Shutdown`] (the worker answers it on the way out);
    /// [`ServeError::ShardDown`] is reserved for a worker that actually
    /// died with the reply unsent (a panic mid-request).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShardDown))
    }
}

/// The multi-tenant session service over [`gmaa::AnalysisEngine`].
///
/// `hash(session) → shard` picks one of N worker threads; that worker
/// exclusively owns every session routed to it (no engine is ever shared
/// across threads, so there is no locking anywhere in the serving path).
/// Each shard keeps up to a configured number of sessions resident and
/// transparently hibernates/rehydrates the rest through serde snapshots.
///
/// ```
/// use gmaa_serve::{Request, Response, ServeConfig, SessionConfig, SessionManager};
/// use maut::prelude::*;
///
/// // A tiny two-attribute model for one tenant.
/// let mut b = DecisionModelBuilder::new("laptops");
/// let price = b.continuous_attribute("price", "Price", 500.0, 2000.0, Direction::Decreasing);
/// let battery = b.discrete_attribute("battery", "Battery", &["poor", "ok", "great"]);
/// b.attach_attributes_to_root(&[
///     (price, Interval::new(0.4, 0.6)),
///     (battery, Interval::new(0.4, 0.6)),
/// ]);
/// b.alternative("A", vec![Perf::value(900.0), Perf::level(2)]);
/// b.alternative("B", vec![Perf::value(1500.0), Perf::level(1)]);
/// b.alternative("C", vec![Perf::value(1100.0), Perf::Missing]);
/// let model = b.build().unwrap();
/// let price = model.find_attribute("price").unwrap();
///
/// let manager = SessionManager::new(ServeConfig {
///     shards: 2,
///     session: SessionConfig { mc_trials: 200, ..SessionConfig::default() },
///     ..ServeConfig::default()
/// });
/// manager
///     .request(Request::CreateSession { session: "alice".into(), model })
///     .unwrap();
///
/// // What-if loop: edit one cell, re-run the discard cycle. After the
/// // first (full) cycle, post-edit cycles are served incrementally.
/// manager
///     .request(Request::DiscardCycle { session: "alice".into() })
///     .unwrap();
/// manager
///     .request(Request::SetPerf {
///         session: "alice".into(),
///         alternative: 1,
///         attr: price,
///         perf: Perf::value(700.0),
///     })
///     .unwrap();
/// match manager.request(Request::DiscardCycle { session: "alice".into() }).unwrap() {
///     Response::Cycle(cycle) => assert!(!cycle.non_dominated.is_empty()),
///     other => panic!("expected a cycle, got {other:?}"),
/// }
/// let stats = manager.stats();
/// assert_eq!(stats.aggregate().cycles.incremental, 1);
/// assert_eq!(stats.incremental_hit_rate(), Some(0.5));
/// ```
#[derive(Debug)]
pub struct SessionManager {
    senders: Vec<Sender<Command>>,
    workers: Vec<JoinHandle<()>>,
    /// One admission gate per shard, shared with that shard's worker
    /// (manager admits, worker releases at dequeue).
    gates: Vec<Arc<ShardGate>>,
    /// Per-tenant token buckets ([`ServeConfig::quota`]).
    buckets: TokenBuckets,
    quota: Option<TenantQuota>,
    default_deadline: Option<Duration>,
    /// Set on shutdown/drop *before* workers stop: the submit path
    /// checks it first, and workers answer still-queued requests with
    /// [`ServeError::Shutdown`] once it is up.
    stopping: Arc<AtomicBool>,
}

impl SessionManager {
    /// Spawn the shard workers. `config.shards == 0` is treated as 1.
    pub fn new(config: ServeConfig) -> SessionManager {
        SessionManager::spawn(config, None)
    }

    /// Spawn the shard workers over a durable [`SessionStore`],
    /// recovering every session the store holds: the store is enumerated
    /// once, each session name is routed to its shard by the same stable
    /// FNV-1a hash used for requests, and the shard rehydrates it
    /// journal-over-snapshot on its next request — with analysis results
    /// bit-identical to a process that never crashed. Fails only if the
    /// recovery enumeration itself fails.
    ///
    /// ```
    /// use gmaa_serve::{MemoryStore, Request, Response, ServeConfig, SessionManager};
    /// use std::sync::Arc;
    ///
    /// # let mut b = maut::prelude::DecisionModelBuilder::new("m");
    /// # let x = b.discrete_attribute("x", "X", &["l", "h"]);
    /// # b.attach_attributes_to_root(&[(x, maut::Interval::new(0.9, 1.0))]);
    /// # b.alternative("a", vec![maut::Perf::level(1)]);
    /// # let model = b.build().unwrap();
    /// let store = Arc::new(MemoryStore::new());
    /// {
    ///     let m = SessionManager::with_store(ServeConfig::default(), store.clone()).unwrap();
    ///     m.request(Request::CreateSession { session: "alice".into(), model }).unwrap();
    ///     // ... edits are journaled as they happen ...
    /// } // manager dropped: simulate the process going away
    ///
    /// // A new manager over the same store finds every tenant again.
    /// let recovered = SessionManager::with_store(ServeConfig::default(), store).unwrap();
    /// assert!(matches!(
    ///     recovered.request(Request::Analyze { session: "alice".into() }),
    ///     Ok(Response::Analysis(_))
    /// ));
    /// ```
    pub fn with_store(
        config: ServeConfig,
        store: Arc<dyn SessionStore>,
    ) -> Result<SessionManager, ServeError> {
        let shards = config.shards.max(1);
        let mut recovered: Vec<Vec<String>> = vec![Vec::new(); shards];
        for name in store.sessions()? {
            let shard = (fnv1a(name.as_bytes()) % shards as u64) as usize;
            if let Some(bucket) = recovered.get_mut(shard) {
                bucket.push(name);
            }
        }
        Ok(SessionManager::spawn(config, Some((store, recovered))))
    }

    fn spawn(config: ServeConfig, store: Option<StoreHandoff>) -> SessionManager {
        let shards = config.shards.max(1);
        let stopping = Arc::new(AtomicBool::new(false));
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut gates = Vec::with_capacity(shards);
        let mut store = store;
        for index in 0..shards {
            let (tx, rx) = channel();
            let gate = Arc::new(ShardGate::new(config.queue_capacity));
            let mut shard = Shard::new(index, config.max_sessions_per_shard, config.session)
                .with_admission(Arc::clone(&gate), Arc::clone(&stopping));
            if let Some((store, recovered)) = &mut store {
                let names = recovered
                    .get_mut(index)
                    .map(std::mem::take)
                    .unwrap_or_default();
                shard = shard.with_store(Arc::clone(store), names);
            }
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gmaa-serve-shard-{index}"))
                    .spawn(move || shard.run(rx))
                    // lint:allow(no-panic-in-serving) -- startup-time spawn before any tenant traffic; a process that cannot create threads cannot serve at all
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
            gates.push(gate);
        }
        SessionManager {
            senders,
            workers,
            gates,
            buckets: TokenBuckets::default(),
            quota: config.quota,
            default_deadline: config.default_deadline_ms.map(Duration::from_millis),
            stopping,
        }
    }

    /// Flush every live session on every shard to the store (graceful
    /// shutdown — the durable complement of just dropping the manager).
    /// Sessions stay live and serving. Returns the total number of
    /// sessions flushed; every shard is drained even if one fails, and
    /// the first failure is reported. Without a store this is a no-op
    /// returning `Ok(0)`.
    pub fn drain(&self) -> Result<u64, ServeError> {
        let mut pending = Vec::with_capacity(self.senders.len());
        for sender in &self.senders {
            let (tx, rx) = channel();
            let sent = sender.send(Command::Drain { reply: tx }).is_ok();
            pending.push((sent, rx));
        }
        let mut flushed = 0u64;
        let mut first_err: Option<ServeError> = None;
        for (sent, rx) in pending {
            let outcome = if sent {
                rx.recv().unwrap_or(Err(ServeError::ShardDown))
            } else {
                Err(ServeError::ShardDown)
            };
            match outcome {
                Ok(n) => flushed += n,
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(flushed),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard that owns `session`: `fnv1a(session) % shards`.
    /// Deterministic and stable across processes and platforms.
    pub fn shard_of(&self, session: &str) -> usize {
        (fnv1a(session.as_bytes()) % self.senders.len() as u64) as usize
    }

    /// Route `request` to its session's shard without waiting for the
    /// reply — the building block for pipelined clients that keep many
    /// shards busy at once. The returned [`Pending`] resolves to the
    /// shard's reply.
    ///
    /// Admission control runs here, on the caller's thread: a shutting-
    /// down manager, an empty tenant token bucket, or a full shard queue
    /// resolve the `Pending` immediately with [`ServeError::Shutdown`],
    /// [`ServeError::QuotaExceeded`], or [`ServeError::Overloaded`] —
    /// nothing is ever queued past [`ServeConfig::queue_capacity`].
    pub fn submit(&self, request: Request) -> Pending {
        self.submit_with_deadline(request, self.default_deadline)
    }

    /// [`submit`](SessionManager::submit) with an explicit per-request
    /// deadline (overriding [`ServeConfig::default_deadline_ms`];
    /// `None` disables it). The deadline is measured from admission: if
    /// the request is still waiting in its shard's queue when it
    /// expires, the worker answers [`ServeError::DeadlineExceeded`] at
    /// dequeue without touching the engine. A request already being
    /// executed is never aborted.
    pub fn submit_with_deadline(&self, request: Request, deadline: Option<Duration>) -> Pending {
        let (tx, rx) = channel();
        if let Err(e) = self.admit(request, deadline, &tx) {
            // The rejection resolves the Pending; sending to our own
            // receiver cannot fail.
            let _ = tx.send(Err(e));
        }
        Pending { rx }
    }

    /// The admission pipeline: shutdown check → tenant quota → queue
    /// capacity → enqueue. Any `Err` means the request was rejected
    /// without being queued.
    fn admit(
        &self,
        request: Request,
        deadline: Option<Duration>,
        reply: &Sender<Result<Response, ServeError>>,
    ) -> Result<(), ServeError> {
        if self.stopping.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let shard = self.shard_of(request.session());
        // `shard_of` is always in range, but a typed degradation beats an
        // indexing panic if that ever stops holding.
        let (Some(sender), Some(gate)) = (self.senders.get(shard), self.gates.get(shard)) else {
            return Err(ServeError::ShardDown);
        };
        if let Some(quota) = self.quota {
            if !self.buckets.take(request.session(), quota, Instant::now()) {
                gate.count_quota_rejection();
                return Err(ServeError::QuotaExceeded {
                    session: request.session().to_string(),
                });
            }
        }
        if let Err(depth) = gate.try_admit() {
            return Err(ServeError::Overloaded { shard, depth });
        }
        let command = Command::Api {
            request: Box::new(request),
            reply: reply.clone(),
            admitted: Instant::now(),
            deadline,
        };
        if sender.send(command).is_err() {
            // The worker is gone; give the reserved slot back.
            gate.release();
            return Err(ServeError::ShardDown);
        }
        Ok(())
    }

    /// Route `request` to its session's shard and wait for the reply.
    pub fn request(&self, request: Request) -> Result<Response, ServeError> {
        self.submit(request).wait()
    }

    /// Graceful shutdown: close admission, then [`drain`](SessionManager::drain).
    ///
    /// After this returns, every later `submit` resolves to
    /// [`ServeError::Shutdown`], requests that were still queued are
    /// answered the same way by their workers, and every session that
    /// was live has been flushed to the store (journal compacted into a
    /// snapshot, store synced). Returns the number of sessions flushed.
    /// The workers stay up to answer in-flight replies until the
    /// manager is dropped.
    pub fn shutdown(&self) -> Result<u64, ServeError> {
        self.stopping.store(true, Ordering::Release);
        self.drain()
    }

    /// Whether [`shutdown`](SessionManager::shutdown) has been called
    /// (admission permanently closed).
    pub fn is_shutting_down(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    /// Collect every shard's counters (in shard order) plus the
    /// aggregation helpers. Each shard reports between requests, so the
    /// counters are always mutually consistent within a shard.
    pub fn stats(&self) -> ServeStats {
        let mut pending = Vec::with_capacity(self.senders.len());
        for (index, sender) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            let sent = sender.send(Command::Stats { reply: tx }).is_ok();
            pending.push((index, sent, rx));
        }
        let shards = pending
            .into_iter()
            .map(|(index, sent, rx)| {
                // A dead worker still has observable admission history:
                // fall back to the manager's copy of its gate counters.
                let mut fallback = ShardStats {
                    shard: index,
                    ..ShardStats::default()
                };
                if let Some(gate) = self.gates.get(index) {
                    fallback.queued_now = gate.queued_now();
                    fallback.queue_high_water = gate.queue_high_water();
                    fallback.rejected_overload = gate.rejected_overload();
                    fallback.rejected_quota = gate.rejected_quota();
                    fallback.rejected_deadline = gate.rejected_deadline();
                }
                if sent {
                    rx.recv().unwrap_or(fallback)
                } else {
                    fallback
                }
            })
            .collect();
        ServeStats { shards }
    }
}

impl Drop for SessionManager {
    /// Disconnect the channels and join every worker, so no shard thread
    /// outlives the manager. The stopping flag goes up *first*, so any
    /// request still queued when the channels close is answered
    /// [`ServeError::Shutdown`] by its worker on the way out — an
    /// outstanding [`Pending`] resolves to that typed error, never to a
    /// bare recv failure.
    fn drop(&mut self) {
        self.stopping.store(true, Ordering::Release);
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_stable() {
        let a = SessionManager::new(ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        });
        let b = SessionManager::new(ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        });
        for name in ["alice", "bob", "carol", "session-42", ""] {
            assert_eq!(a.shard_of(name), b.shard_of(name));
            assert_eq!(a.shard_of(name), (fnv1a(name.as_bytes()) % 4) as usize);
            assert!(a.shard_of(name) < 4);
        }
        // FNV-1a reference vector: fnv1a("a") is the documented constant.
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn unknown_session_round_trips_an_error() {
        let m = SessionManager::new(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        });
        assert!(matches!(
            m.request(Request::Analyze {
                session: "ghost".into()
            }),
            Err(ServeError::UnknownSession(_))
        ));
        let stats = m.stats();
        assert_eq!(stats.aggregate().requests.analyze, 1);
    }

    #[test]
    fn stats_cover_every_shard_in_order() {
        let m = SessionManager::new(ServeConfig {
            shards: 3,
            ..ServeConfig::default()
        });
        let stats = m.stats();
        assert_eq!(stats.shards.len(), 3);
        for (i, s) in stats.shards.iter().enumerate() {
            assert_eq!(s.shard, i);
        }
    }
}
