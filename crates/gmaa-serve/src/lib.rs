//! # gmaa-serve
//!
//! A multi-tenant, thread-sharded session service over
//! [`gmaa::AnalysisEngine`].
//!
//! The GMAA workflow is session-oriented: an analyst loads a decision
//! model, then iterates what-if edits through the dominance →
//! potential-optimality → intensity cycle. The engine layer makes that
//! loop cheap *per session* (pair-level invalidation, per-alternative
//! warm LP bases); this crate serves **many such sessions over many
//! models at once**:
//!
//! * **Sharding.** A [`SessionManager`] spawns N shard worker threads
//!   (`std::thread` + `mpsc` channels — the workspace is offline, so no
//!   async runtime; same precedent as `maut::par`). `fnv1a(session) %
//!   shards` picks the owner, and each worker exclusively owns its
//!   sessions' engines, so the serving path has no locks and no shared
//!   mutable state.
//! * **Typed protocol.** Clients speak [`Request`] / [`Response`]:
//!   `CreateSession`, the what-if edits `SetPerf` / `SetWeight`,
//!   `Analyze` / `DiscardCycle` (routed through
//!   `analyze_incremental` / `discard_cycle_incremental`, so post-edit
//!   cycles exploit the engine's caches), `MonteCarlo { trials }`,
//!   `Snapshot`, and `CloseSession`. [`SessionManager::request`] is the
//!   synchronous call; [`SessionManager::submit`] pipelines.
//! * **LRU hibernation.** Each shard keeps a configurable number of
//!   sessions resident ([`ServeConfig::max_sessions_per_shard`]); beyond
//!   the cap the least-recently-used session is serialized to a
//!   [`SessionSnapshot`] (model JSON + settings — edits are applied to
//!   the model in place, so the model alone is the complete pending
//!   state) and transparently rehydrated on its next request, with
//!   identical analysis results.
//! * **Durability.** An optional [`SessionStore`]
//!   ([`MemoryStore`] / [`FileStore`]) makes sessions survive the
//!   process: applied edits append to a per-session write-ahead journal,
//!   eviction writes a compacted snapshot (which then leaves shard
//!   memory), [`SessionManager::with_store`] re-enumerates the store on
//!   startup and rehydrates each tenant journal-over-snapshot with
//!   bit-identical analysis results, and [`SessionManager::drain`]
//!   flushes everything for a graceful shutdown.
//! * **Counters.** Per-shard and aggregate [`ServeStats`]: sessions,
//!   requests by kind, incremental-vs-full cycle counts (the
//!   [`ServeStats::incremental_hit_rate`] headline), LP warm/cold solve
//!   and pivot totals, evictions and rehydrations, store/journal
//!   activity ([`StoreStats`]).
//!
//! See [`SessionManager`] for a runnable quickstart, and
//! `examples/serving.rs` / `examples/durable_serving.rs` at the
//! workspace root for multi-tenant and crash-recovery demos.

#![warn(missing_docs)]

mod admission;
mod manager;
pub mod net;
mod protocol;
mod session;
mod shard;
mod stats;
mod store;

pub use admission::TenantQuota;
pub use manager::{Pending, ServeConfig, SessionManager};
pub use protocol::{Request, RequestKind, Response, ServeError, SessionConfig, SessionSnapshot};
pub use stats::{LoadStats, RequestCounts, ServeStats, ShardStats, StoreStats};
pub use store::{
    FaultInjectingStore, FileStore, FsyncPolicy, JournalRecord, MemoryStore, SessionStore,
    StoreError, StoreOp, StoredSession,
};
