//! The pluggable durable session store: one trait, swappable backends.
//!
//! `gmaa-serve` hibernates idle sessions to [`SessionSnapshot`]s; without
//! a store everything dies with the process. A [`SessionStore`] makes a
//! decision session survive across sittings the way the paper's
//! interactive what-if workflow assumes:
//!
//! * **Write-ahead journal.** Every successful `SetPerf` / `SetWeight`
//!   appends one tiny [`JournalRecord`] to the session's journal *after*
//!   the edit is applied in memory. Edits are absolute cell writes (not
//!   deltas), so replay is idempotent and the journal IS the pending
//!   state between snapshots.
//! * **Snapshot + compact.** LRU eviction (and [`drain`]) writes a
//!   compacted [`SessionSnapshot`] — the mutated model carries every edit
//!   — and truncates the journal.
//! * **Replay on recovery.** [`SessionManager::with_store`] enumerates
//!   the store, partitions session names by the stable FNV-1a routing,
//!   and each shard rehydrates journal-over-snapshot on the session's
//!   next request, with bit-identical analysis results. A torn trailing
//!   record (a crash mid-append) is dropped and counted, never fatal.
//!
//! Two backends ship: [`MemoryStore`] (same process-lifetime semantics as
//! the storeless shard, but spilled out of shard memory) and
//! [`FileStore`] (length-prefixed JSON journal lines + atomic snapshot
//! files, with a configurable [`FsyncPolicy`]).
//!
//! [`drain`]: crate::SessionManager::drain
//! [`SessionManager::with_store`]: crate::SessionManager::with_store

mod fault;
mod file;
mod memory;

pub use fault::{FaultInjectingStore, StoreOp};
pub use file::FileStore;
pub use memory::MemoryStore;

use crate::protocol::SessionSnapshot;
use maut::{AttributeId, Interval, ObjectiveId, Perf};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One durable what-if edit, appended to a session's write-ahead journal
/// as it is applied. Records carry the absolute new value (not a delta),
/// so replaying a record that the snapshot already absorbed — a crash
/// between snapshot write and journal truncation — is idempotent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A `SetPerf` edit: `(alternative, attribute, new performance)`.
    SetPerf(usize, AttributeId, Perf),
    /// A `SetWeight` edit: `(objective, new weight interval)`.
    SetWeight(ObjectiveId, Interval),
}

/// Everything the store holds for one session: the last compacted
/// snapshot plus the journaled edits applied since. Rebuilding the
/// session = restore the snapshot, then replay the journal in order.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSession {
    /// The compacted state at the last snapshot (create, eviction, or
    /// drain).
    pub snapshot: SessionSnapshot,
    /// Edits journaled after that snapshot, in application order.
    pub journal: Vec<JournalRecord>,
    /// Torn trailing journal segments dropped during decode (at most 1
    /// per load — a crash can tear only the final append).
    pub torn_records: u64,
}

/// When the file-backed store calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync every journal append and every snapshot — survives power
    /// loss, costs a disk flush per edit.
    Always,
    /// Sync snapshots only; journal appends are left to the OS page
    /// cache. Survives process crashes (the write is in kernel buffers),
    /// not power loss. The default.
    OnSnapshot,
    /// Never sync — benchmarks and tests.
    Never,
}

/// Errors from a [`SessionStore`] backend.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying I/O failed.
    Io(std::io::Error),
    /// A record or snapshot could not be encoded.
    Encode(String),
    /// Stored bytes exist but do not decode (beyond a tolerated torn
    /// trailing journal record).
    Corrupt(String),
    /// A journal append addressed a session the store has no snapshot
    /// for — appends must follow the session's initial snapshot.
    UnknownSession(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Encode(e) => write!(f, "store encoding failed: {e}"),
            StoreError::Corrupt(e) => write!(f, "store state is corrupt: {e}"),
            StoreError::UnknownSession(s) => {
                write!(f, "journal append to unknown session {s:?}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

// Hand-written wire encoding: `std::io::Error` cannot derive, so the `Io`
// variant round-trips through its message (the remote side gets an
// `io::Error` of kind `Other` carrying the original text).
impl serde::Serialize for StoreError {
    fn to_value(&self) -> serde::Value {
        let (tag, msg) = match self {
            StoreError::Io(e) => ("Io", e.to_string()),
            StoreError::Encode(e) => ("Encode", e.clone()),
            StoreError::Corrupt(e) => ("Corrupt", e.clone()),
            StoreError::UnknownSession(s) => ("UnknownSession", s.clone()),
        };
        serde::Value::Map(vec![(tag.to_string(), serde::Value::Str(msg))])
    }
}

impl serde::Deserialize for StoreError {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entry = v.as_map().and_then(|m| m.first());
        let (tag, msg) = match entry {
            Some((tag, serde::Value::Str(msg))) => (tag.as_str(), msg.clone()),
            _ => {
                return Err(serde::Error::custom(format!(
                    "expected single-entry StoreError map, got {v:?}"
                )))
            }
        };
        match tag {
            "Io" => Ok(StoreError::Io(std::io::Error::other(msg))),
            "Encode" => Ok(StoreError::Encode(msg)),
            "Corrupt" => Ok(StoreError::Corrupt(msg)),
            "UnknownSession" => Ok(StoreError::UnknownSession(msg)),
            other => Err(serde::Error::custom(format!(
                "unknown StoreError variant {other:?}"
            ))),
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> StoreError {
        StoreError::Encode(e.to_string())
    }
}

/// A durable session store: swappable persistence behind the shard
/// workers (one trait, several backends — the Oxigraph storage split).
///
/// Sessions are partitioned across shards by stable FNV-1a routing, so
/// concurrent shard workers never address the same session; backends
/// still use interior mutability (`&self` methods) so one handle can be
/// shared as an `Arc<dyn SessionStore>` across shard threads.
pub trait SessionStore: Send + Sync {
    /// Append one edit record to `session`'s write-ahead journal. The
    /// session must have a snapshot in the store (written at create).
    fn append(&self, session: &str, record: &JournalRecord) -> Result<(), StoreError>;

    /// Write a compacted snapshot for `snapshot.session` and truncate its
    /// journal. The snapshot carries every applied edit, so the records
    /// it replaces are redundant; a crash between the snapshot write and
    /// the journal truncation only leaves idempotent records behind.
    fn put_snapshot(&self, snapshot: &SessionSnapshot) -> Result<(), StoreError>;

    /// Load a session's snapshot plus pending journal. `Ok(None)` if the
    /// store has no state for it.
    fn load(&self, session: &str) -> Result<Option<StoredSession>, StoreError>;

    /// Delete all state for `session`. Missing state is not an error.
    fn remove(&self, session: &str) -> Result<(), StoreError>;

    /// All session names with state in the store — the recovery
    /// enumeration.
    fn sessions(&self) -> Result<Vec<String>, StoreError>;

    /// Flush any buffered writes to durable storage (fsync-policy
    /// dependent; a no-op for memory backends).
    fn sync(&self) -> Result<(), StoreError>;
}

// ------------------------------------------------------- journal wire format
//
// One record per line: `<len> <json>\n`, where `<len>` is the byte length
// of `<json>` in ASCII decimal. The prefix lets the decoder distinguish a
// torn trailing record (fewer than `len` bytes follow) from corruption,
// and the newline keeps the file greppable.

/// Encode one record in the length-prefixed JSON-line format.
pub(crate) fn encode_record(record: &JournalRecord) -> Result<Vec<u8>, StoreError> {
    let json = serde_json::to_string(record)?;
    let mut out = Vec::with_capacity(json.len() + 12);
    out.extend_from_slice(json.len().to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(json.as_bytes());
    out.push(b'\n');
    Ok(out)
}

/// Decode a journal byte stream. Returns the complete records plus the
/// number of torn trailing segments dropped (0 or 1): decoding stops at
/// the first record that is truncated or does not parse, because
/// anything after a bad length prefix is unframed.
pub(crate) fn decode_journal(bytes: &[u8]) -> (Vec<JournalRecord>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(rest) = bytes.get(pos..) else {
            break;
        };
        let Some(space) = rest.iter().position(|&b| b == b' ') else {
            return (records, 1);
        };
        let len = match rest
            .get(..space)
            .and_then(|s| std::str::from_utf8(s).ok())
            .and_then(|s| s.parse::<usize>().ok())
        {
            Some(len) => len,
            None => return (records, 1),
        };
        let body_start = pos + space + 1;
        let Some(body_end) = body_start.checked_add(len) else {
            return (records, 1);
        };
        let Some(body) = bytes.get(body_start..body_end) else {
            return (records, 1);
        };
        let Ok(json) = std::str::from_utf8(body) else {
            return (records, 1);
        };
        let Ok(record) = serde_json::from_str::<JournalRecord>(json) else {
            return (records, 1);
        };
        records.push(record);
        pos = body_end;
        match bytes.get(pos) {
            Some(b'\n') => pos += 1,
            // A complete record whose terminator was torn off still
            // parsed fully — keep it, and stop (nothing can follow).
            None => break,
            Some(_) => return (records, 1),
        }
    }
    (records, 0)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::protocol::SessionConfig;
    use maut::prelude::*;

    /// The shared two-attribute test model used across store tests.
    pub(crate) fn model() -> DecisionModel {
        let mut b = DecisionModelBuilder::new("m");
        let x = b.discrete_attribute("x", "X", &["l", "m", "h"]);
        let y = b.discrete_attribute("y", "Y", &["l", "m", "h"]);
        b.attach_attributes_to_root(&[(x, Interval::new(0.4, 0.6)), (y, Interval::new(0.4, 0.6))]);
        b.alternative("a", vec![Perf::level(2), Perf::level(1)]);
        b.alternative("b", vec![Perf::level(0), Perf::level(2)]);
        b.build().unwrap()
    }

    fn records() -> Vec<JournalRecord> {
        let model = model();
        let x = model.find_attribute("x").unwrap();
        let x_obj = model.tree.find("x").unwrap();
        vec![
            JournalRecord::SetPerf(0, x, Perf::level(2)),
            JournalRecord::SetPerf(1, x, Perf::Missing),
            JournalRecord::SetWeight(x_obj, Interval::new(0.2, 0.7)),
        ]
    }

    #[test]
    fn records_roundtrip_through_the_wire_format() {
        let mut bytes = Vec::new();
        for r in &records() {
            bytes.extend_from_slice(&encode_record(r).unwrap());
        }
        let (decoded, torn) = decode_journal(&bytes);
        assert_eq!(decoded, records());
        assert_eq!(torn, 0);
    }

    #[test]
    fn empty_journal_decodes_empty() {
        assert_eq!(decode_journal(b""), (Vec::new(), 0));
    }

    #[test]
    fn torn_trailing_record_is_dropped_not_fatal() {
        let all = records();
        let mut bytes = Vec::new();
        for r in &all {
            bytes.extend_from_slice(&encode_record(r).unwrap());
        }
        // Tear the final record anywhere inside it (short of only losing
        // its trailing newline, which still parses fully): every prefix
        // decodes to the first two records plus one torn segment, never
        // an error.
        let second_end =
            encode_record(&all[0]).unwrap().len() + encode_record(&all[1]).unwrap().len();
        for cut in second_end + 1..bytes.len() - 1 {
            let (decoded, torn) = decode_journal(&bytes[..cut]);
            assert_eq!(decoded, all[..2], "cut at {cut}");
            assert_eq!(torn, 1, "cut at {cut}");
        }
    }

    #[test]
    fn missing_final_newline_keeps_a_complete_record() {
        let bytes = encode_record(&records()[0]).unwrap();
        let (decoded, torn) = decode_journal(&bytes[..bytes.len() - 1]);
        assert_eq!(decoded, records()[..1]);
        assert_eq!(torn, 0);
    }

    #[test]
    fn garbage_journal_yields_no_records() {
        let (decoded, torn) = decode_journal(b"not a journal at all");
        assert!(decoded.is_empty());
        assert_eq!(torn, 1);
        let (decoded, torn) = decode_journal(b"999999999999999999999999 {}");
        assert!(decoded.is_empty());
        assert_eq!(torn, 1);
    }

    #[test]
    fn snapshot_after_records_is_independent_of_journal() {
        // The wire format is journal-only; snapshots go through plain
        // JSON. Sanity-check the snapshot type round-trips beside it.
        let model = model();
        let snap = SessionSnapshot {
            session: "weird name \" with / bytes".to_string(),
            model_json: gmaa::model_to_json(&model).unwrap(),
            config: SessionConfig::default(),
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: SessionSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn store_error_display_is_informative() {
        assert!(StoreError::Corrupt("bad".into())
            .to_string()
            .contains("bad"));
        assert!(StoreError::UnknownSession("s".into())
            .to_string()
            .contains("s"));
        let io: StoreError = std::io::Error::other("disk on fire").into();
        assert!(io.to_string().contains("disk on fire"));
    }
}
