//! [`FaultInjectingStore`]: deterministic storage-failure schedules over
//! any [`SessionStore`], for proving that every `StoreError` degradation
//! path keeps the shard serving.
//!
//! Two schedules compose, checked in order on every store call:
//!
//! 1. **Scripted** — [`FaultInjectingStore::fail_next`] queues the next
//!    N calls of one operation to fail (exact-targeting for tests).
//! 2. **Seeded random** — [`FaultInjectingStore::with_fail_rate`] makes
//!    every call fail with probability `rate`, driven by a splitmix64
//!    stream off the seed: the same seed and call sequence produce the
//!    same failures on every run, so a "flaky disk" soak test is
//!    perfectly reproducible.
//!
//! Injected failures surface as `StoreError::Io` with a message naming
//! the operation and call number, so a test failure log reads like a
//! fault schedule.

use super::{JournalRecord, SessionStore, StoreError, StoredSession};
use crate::protocol::SessionSnapshot;
use std::sync::{Arc, Mutex, MutexGuard};

/// The injectable operations of a [`SessionStore`], in trait order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// [`SessionStore::append`]
    Append,
    /// [`SessionStore::put_snapshot`]
    PutSnapshot,
    /// [`SessionStore::load`]
    Load,
    /// [`SessionStore::remove`]
    Remove,
    /// [`SessionStore::sessions`]
    Sessions,
    /// [`SessionStore::sync`]
    Sync,
}

const OPS: usize = 6;

impl StoreOp {
    fn index(self) -> usize {
        match self {
            StoreOp::Append => 0,
            StoreOp::PutSnapshot => 1,
            StoreOp::Load => 2,
            StoreOp::Remove => 3,
            StoreOp::Sessions => 4,
            StoreOp::Sync => 5,
        }
    }

    fn name(self) -> &'static str {
        match self {
            StoreOp::Append => "append",
            StoreOp::PutSnapshot => "put_snapshot",
            StoreOp::Load => "load",
            StoreOp::Remove => "remove",
            StoreOp::Sessions => "sessions",
            StoreOp::Sync => "sync",
        }
    }
}

#[derive(Debug)]
struct FaultState {
    /// splitmix64 state for the random schedule.
    rng: u64,
    /// Calls seen per operation (failed or not).
    calls: [u64; OPS],
    /// Scripted failures still pending per operation.
    scripted: [u64; OPS],
    /// Failures injected so far (both schedules).
    injected: u64,
}

/// A [`SessionStore`] wrapper that injects failures on a deterministic
/// schedule. See the module docs; construction is builder-style:
///
/// ```
/// use gmaa_serve::{FaultInjectingStore, MemoryStore, SessionStore, StoreOp};
/// use std::sync::Arc;
///
/// let store = FaultInjectingStore::new(Arc::new(MemoryStore::new()), 42);
/// store.fail_next(StoreOp::Sync, 1);
/// assert!(store.sync().is_err());
/// assert!(store.sync().is_ok());
/// assert_eq!(store.injected(), 1);
/// ```
pub struct FaultInjectingStore {
    inner: Arc<dyn SessionStore>,
    fail_rate: f64,
    state: Mutex<FaultState>,
}

/// splitmix64: passes BigCrush, two lines long, and — unlike anything
/// involving thread IDs or time — exactly reproducible.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultInjectingStore {
    /// Wrap `inner` with no failures scheduled yet; `seed` drives the
    /// random schedule if [`with_fail_rate`](Self::with_fail_rate)
    /// enables one.
    pub fn new(inner: Arc<dyn SessionStore>, seed: u64) -> FaultInjectingStore {
        FaultInjectingStore {
            inner,
            fail_rate: 0.0,
            state: Mutex::new(FaultState {
                rng: seed,
                calls: [0; OPS],
                scripted: [0; OPS],
                injected: 0,
            }),
        }
    }

    /// Fail every store call independently with probability `rate`
    /// (clamped to `[0, 1]`), deterministically off the seed.
    pub fn with_fail_rate(mut self, rate: f64) -> FaultInjectingStore {
        self.fail_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Queue the next `n` calls of `op` to fail (on top of whatever the
    /// random schedule would do).
    pub fn fail_next(&self, op: StoreOp, n: u64) {
        if let Some(slot) = self.locked().scripted.get_mut(op.index()) {
            *slot += n;
        }
    }

    /// Failures injected so far.
    pub fn injected(&self) -> u64 {
        self.locked().injected
    }

    /// Calls of `op` seen so far (failed or not).
    pub fn calls(&self, op: StoreOp) -> u64 {
        self.locked()
            .calls
            .get(op.index())
            .copied()
            .unwrap_or_default()
    }

    fn locked(&self) -> MutexGuard<'_, FaultState> {
        // All writes under this lock are complete scalar stores, so a
        // poisoned lock holds consistent state.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The schedule: count the call, then decide whether it fails.
    fn gate(&self, op: StoreOp) -> Result<(), StoreError> {
        let mut state = self.locked();
        let call = match state.calls.get_mut(op.index()) {
            Some(slot) => {
                *slot += 1;
                *slot
            }
            None => 0,
        };
        let scripted = match state.scripted.get_mut(op.index()) {
            Some(pending) if *pending > 0 => {
                *pending -= 1;
                true
            }
            _ => false,
        };
        let random = self.fail_rate > 0.0 && {
            // Uniform in [0, 1) from the top 53 bits.
            let roll = (splitmix64(&mut state.rng) >> 11) as f64 / (1u64 << 53) as f64;
            roll < self.fail_rate
        };
        if scripted || random {
            state.injected += 1;
            return Err(StoreError::Io(std::io::Error::other(format!(
                "injected fault: {} call #{call}",
                op.name()
            ))));
        }
        Ok(())
    }
}

impl SessionStore for FaultInjectingStore {
    fn append(&self, session: &str, record: &JournalRecord) -> Result<(), StoreError> {
        self.gate(StoreOp::Append)?;
        self.inner.append(session, record)
    }

    fn put_snapshot(&self, snapshot: &SessionSnapshot) -> Result<(), StoreError> {
        self.gate(StoreOp::PutSnapshot)?;
        self.inner.put_snapshot(snapshot)
    }

    fn load(&self, session: &str) -> Result<Option<StoredSession>, StoreError> {
        self.gate(StoreOp::Load)?;
        self.inner.load(session)
    }

    fn remove(&self, session: &str) -> Result<(), StoreError> {
        self.gate(StoreOp::Remove)?;
        self.inner.remove(session)
    }

    fn sessions(&self) -> Result<Vec<String>, StoreError> {
        self.gate(StoreOp::Sessions)?;
        self.inner.sessions()
    }

    fn sync(&self) -> Result<(), StoreError> {
        self.gate(StoreOp::Sync)?;
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;

    #[test]
    fn scripted_schedule_targets_one_operation() {
        let store = FaultInjectingStore::new(Arc::new(MemoryStore::new()), 1);
        store.fail_next(StoreOp::Sync, 2);
        assert!(store.sync().is_err());
        assert!(store.sessions().is_ok(), "other ops unaffected");
        assert!(store.sync().is_err());
        assert!(store.sync().is_ok());
        assert_eq!(store.injected(), 2);
        assert_eq!(store.calls(StoreOp::Sync), 3);
    }

    #[test]
    fn random_schedule_is_seed_deterministic() {
        let run = |seed: u64| {
            let store =
                FaultInjectingStore::new(Arc::new(MemoryStore::new()), seed).with_fail_rate(0.3);
            (0..200).map(|_| store.sync().is_err()).collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same schedule");
        assert_ne!(a, run(8), "different seed, different schedule");
        let failures = a.iter().filter(|f| **f).count();
        assert!(
            (30..90).contains(&failures),
            "0.3 rate gave {failures}/200 failures"
        );
    }
}
