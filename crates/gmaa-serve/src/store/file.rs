//! The on-disk [`SessionStore`] backend: one snapshot file plus one
//! write-ahead journal file per session.
//!
//! Layout under the store directory, with session names percent-encoded
//! so arbitrary tenant ids map to portable file names:
//!
//! ```text
//! <dir>/<encoded-session>.snap      # compact JSON SessionSnapshot
//! <dir>/<encoded-session>.journal   # length-prefixed JSON records
//! ```
//!
//! Snapshots are written atomically (temp file + rename), so a crash
//! mid-snapshot leaves the previous snapshot intact. The journal is
//! append-only between snapshots; a crash mid-append leaves a torn
//! trailing record that [`decode_journal`](super::decode_journal) drops
//! and counts. The write order — snapshot rename first, journal
//! truncation second — means the worst crash outcome is a journal whose
//! records the snapshot already absorbed, and replaying an absorbed
//! absolute-valued edit is a no-op.

use super::{
    decode_journal, encode_record, FsyncPolicy, JournalRecord, SessionStore, StoreError,
    StoredSession,
};
use crate::protocol::SessionSnapshot;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// A [`SessionStore`] persisting sessions to a directory.
pub struct FileStore {
    dir: PathBuf,
    fsync: FsyncPolicy,
    /// Open append handles for hot journals, so per-edit appends don't
    /// pay an open/close round trip.
    journals: Mutex<HashMap<String, File>>,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Result<FileStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStore {
            dir,
            fsync,
            journals: Mutex::new(HashMap::new()),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn guard(&self) -> MutexGuard<'_, HashMap<String, File>> {
        // Poisoning only means a peer thread panicked; the map of cached
        // handles stays valid (worst case a handle is re-opened).
        match self.journals.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn snap_path(&self, session: &str) -> PathBuf {
        self.dir.join(format!("{}.snap", encode_name(session)))
    }

    fn journal_path(&self, session: &str) -> PathBuf {
        self.dir.join(format!("{}.journal", encode_name(session)))
    }
}

impl SessionStore for FileStore {
    fn append(&self, session: &str, record: &JournalRecord) -> Result<(), StoreError> {
        if !self.snap_path(session).exists() {
            return Err(StoreError::UnknownSession(session.to_string()));
        }
        let bytes = encode_record(record)?;
        let mut journals = self.guard();
        let file = match journals.get_mut(session) {
            Some(f) => f,
            None => {
                let f = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.journal_path(session))?;
                journals.entry(session.to_string()).or_insert(f)
            }
        };
        file.write_all(&bytes)?;
        if self.fsync == FsyncPolicy::Always {
            file.sync_data()?;
        }
        Ok(())
    }

    fn put_snapshot(&self, snapshot: &SessionSnapshot) -> Result<(), StoreError> {
        let json = serde_json::to_string(snapshot)?;
        let path = self.snap_path(&snapshot.session);
        let tmp = self
            .dir
            .join(format!("{}.snap.tmp", encode_name(&snapshot.session)));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            if self.fsync != FsyncPolicy::Never {
                f.sync_all()?;
            }
        }
        std::fs::rename(&tmp, &path)?;
        // Compaction: the renamed snapshot carries every journaled edit,
        // so the journal (and its cached handle) can go. Crash before
        // this remove is safe — the leftover records replay idempotently.
        self.guard().remove(&snapshot.session);
        match std::fs::remove_file(self.journal_path(&snapshot.session)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn load(&self, session: &str) -> Result<Option<StoredSession>, StoreError> {
        let snap_json = match std::fs::read_to_string(self.snap_path(session)) {
            Ok(s) => s,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let snapshot: SessionSnapshot = serde_json::from_str(&snap_json)
            .map_err(|e| StoreError::Corrupt(format!("snapshot for {session:?}: {e}")))?;
        let journal_bytes = match std::fs::read(self.journal_path(session)) {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let (journal, torn_records) = decode_journal(&journal_bytes);
        Ok(Some(StoredSession {
            snapshot,
            journal,
            torn_records,
        }))
    }

    fn remove(&self, session: &str) -> Result<(), StoreError> {
        self.guard().remove(session);
        for path in [self.snap_path(session), self.journal_path(session)] {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn sessions(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let file_name = entry.file_name();
            let Some(name) = file_name.to_str() else {
                continue;
            };
            // Only completed snapshots count; `.snap.tmp` leftovers from
            // a crash mid-write and stray files are skipped.
            let Some(encoded) = name.strip_suffix(".snap") else {
                continue;
            };
            if let Some(decoded) = decode_name(encoded) {
                names.push(decoded);
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    fn sync(&self) -> Result<(), StoreError> {
        if self.fsync == FsyncPolicy::Never {
            return Ok(());
        }
        for file in self.guard().values() {
            file.sync_data()?;
        }
        Ok(())
    }
}

// --------------------------------------------------------- name encoding
//
// Session names are arbitrary UTF-8; file names are not. Alphanumerics,
// `_` and `-` pass through, every other byte becomes `%XX` — including
// `.`, so an encoded name can never collide with the `.snap`/`.journal`/
// `.tmp` suffixes or smuggle a path separator.

fn encode_name(session: &str) -> String {
    let mut out = String::with_capacity(session.len());
    for b in session.bytes() {
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(hex_digit(b >> 4));
            out.push(hex_digit(b & 0xf));
        }
    }
    out
}

fn decode_name(encoded: &str) -> Option<String> {
    let bytes = encoded.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while let Some(&b) = bytes.get(i) {
        if b == b'%' {
            let hi = hex_value(*bytes.get(i + 1)?)?;
            let lo = hex_value(*bytes.get(i + 2)?)?;
            out.push((hi << 4) | lo);
            i += 3;
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn hex_digit(v: u8) -> char {
    match v {
        0..=9 => (b'0' + v) as char,
        _ => (b'a' + (v - 10)) as char,
    }
}

fn hex_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::model;
    use super::*;
    use crate::protocol::SessionConfig;
    use maut::{Interval, Perf};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gmaa-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn snap(name: &str) -> SessionSnapshot {
        SessionSnapshot {
            session: name.to_string(),
            model_json: gmaa::model_to_json(&model()).unwrap(),
            config: SessionConfig::default(),
        }
    }

    #[test]
    fn name_encoding_roundtrips_and_is_filename_safe() {
        for name in [
            "tenant-0",
            "a.b/c\\d",
            "über tenant",
            "..",
            "%41",
            "snap.tmp",
            "",
        ] {
            let enc = encode_name(name);
            assert!(
                enc.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'%'),
                "{enc:?} leaks unsafe bytes"
            );
            assert_eq!(decode_name(&enc).as_deref(), Some(name));
        }
        // Undecodable directory entries are rejected, not mangled.
        assert_eq!(decode_name("%zz"), None);
        assert_eq!(decode_name("%4"), None);
    }

    #[test]
    fn full_lifecycle_on_disk() {
        let dir = temp_dir("lifecycle");
        let store = FileStore::open(&dir, FsyncPolicy::Never).unwrap();
        store.put_snapshot(&snap("t.0")).unwrap();
        let m = model();
        let x = m.find_attribute("x").unwrap();
        let r1 = JournalRecord::SetPerf(0, x, Perf::level(0));
        let r2 = JournalRecord::SetWeight(m.tree.find("x").unwrap(), Interval::new(0.1, 0.9));
        store.append("t.0", &r1).unwrap();
        store.append("t.0", &r2).unwrap();
        store.sync().unwrap();

        // A second handle over the same directory sees everything — this
        // is the crash/recovery path.
        let recovered = FileStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.sessions().unwrap(), ["t.0"]);
        let loaded = recovered.load("t.0").unwrap().unwrap();
        assert_eq!(loaded.snapshot, snap("t.0"));
        assert_eq!(loaded.journal, vec![r1.clone(), r2]);
        assert_eq!(loaded.torn_records, 0);

        // Compaction truncates the journal file.
        store.put_snapshot(&snap("t.0")).unwrap();
        assert!(recovered.load("t.0").unwrap().unwrap().journal.is_empty());
        assert!(!store.journal_path("t.0").exists());

        // Appends to a never-snapshotted session are rejected.
        assert!(matches!(
            store.append("ghost", &r1),
            Err(StoreError::UnknownSession(_))
        ));

        store.remove("t.0").unwrap();
        store.remove("t.0").unwrap(); // idempotent
        assert!(store.sessions().unwrap().is_empty());
        assert!(store.load("t.0").unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_tolerated_on_load() {
        let dir = temp_dir("torn");
        let store = FileStore::open(&dir, FsyncPolicy::Never).unwrap();
        store.put_snapshot(&snap("t")).unwrap();
        let m = model();
        let x = m.find_attribute("x").unwrap();
        let r1 = JournalRecord::SetPerf(0, x, Perf::level(1));
        let r2 = JournalRecord::SetPerf(1, x, Perf::level(2));
        store.append("t", &r1).unwrap();
        store.append("t", &r2).unwrap();

        // Simulate a crash mid-append: chop bytes off the journal tail.
        let path = store.journal_path("t");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let loaded = store.load("t").unwrap().unwrap();
        assert_eq!(loaded.journal, vec![r1]);
        assert_eq!(loaded.torn_records, 1);

        // A corrupt snapshot, by contrast, is fatal for that session.
        std::fs::write(store.snap_path("t"), b"{ nope").unwrap();
        assert!(matches!(store.load("t"), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_leftovers_are_not_enumerated() {
        let dir = temp_dir("tmp-leftover");
        let store = FileStore::open(&dir, FsyncPolicy::Never).unwrap();
        store.put_snapshot(&snap("real")).unwrap();
        std::fs::write(dir.join("half-written.snap.tmp"), b"{").unwrap();
        std::fs::write(dir.join("README"), b"not a session").unwrap();
        assert_eq!(store.sessions().unwrap(), ["real"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
