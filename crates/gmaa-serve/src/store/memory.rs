//! The in-process [`SessionStore`] backend: a mutex-guarded map.
//!
//! Durability matches the storeless shard — everything dies with the
//! process — but evicted snapshots spill *out of shard memory* into one
//! shared map, and the recovery/drain protocol can be exercised without
//! touching a filesystem (hand the same `Arc<MemoryStore>` to a second
//! manager). Records are kept decoded; only tests that need the wire
//! format go through [`FileStore`](super::FileStore).

use super::{JournalRecord, SessionStore, StoreError, StoredSession};
use crate::protocol::SessionSnapshot;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

struct Slot {
    snapshot: SessionSnapshot,
    journal: Vec<JournalRecord>,
}

/// A [`SessionStore`] holding all state in process memory.
#[derive(Default)]
pub struct MemoryStore {
    inner: Mutex<HashMap<String, Slot>>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }

    fn guard(&self) -> MutexGuard<'_, HashMap<String, Slot>> {
        // A poisoned store mutex means another shard thread panicked
        // mid-operation; the map itself is always in a consistent state
        // (every mutation is a single insert/remove/push), so serving
        // degraded beats refusing every tenant.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl SessionStore for MemoryStore {
    fn append(&self, session: &str, record: &JournalRecord) -> Result<(), StoreError> {
        match self.guard().get_mut(session) {
            Some(slot) => {
                slot.journal.push(record.clone());
                Ok(())
            }
            None => Err(StoreError::UnknownSession(session.to_string())),
        }
    }

    fn put_snapshot(&self, snapshot: &SessionSnapshot) -> Result<(), StoreError> {
        self.guard().insert(
            snapshot.session.clone(),
            Slot {
                snapshot: snapshot.clone(),
                journal: Vec::new(),
            },
        );
        Ok(())
    }

    fn load(&self, session: &str) -> Result<Option<StoredSession>, StoreError> {
        Ok(self.guard().get(session).map(|slot| StoredSession {
            snapshot: slot.snapshot.clone(),
            journal: slot.journal.clone(),
            torn_records: 0,
        }))
    }

    fn remove(&self, session: &str) -> Result<(), StoreError> {
        self.guard().remove(session);
        Ok(())
    }

    fn sessions(&self) -> Result<Vec<String>, StoreError> {
        let mut names: Vec<String> = self.guard().keys().cloned().collect();
        names.sort_unstable();
        Ok(names)
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::model;
    use super::*;
    use crate::protocol::SessionConfig;
    use maut::{Interval, Perf};

    fn snap(name: &str) -> SessionSnapshot {
        SessionSnapshot {
            session: name.to_string(),
            model_json: gmaa::model_to_json(&model()).unwrap(),
            config: SessionConfig::default(),
        }
    }

    #[test]
    fn snapshot_then_journal_then_load() {
        let store = MemoryStore::new();
        store.put_snapshot(&snap("t")).unwrap();
        let m = model();
        let x = m.find_attribute("x").unwrap();
        let r1 = JournalRecord::SetPerf(0, x, Perf::level(1));
        let r2 = JournalRecord::SetWeight(m.tree.find("y").unwrap(), Interval::new(0.3, 0.5));
        store.append("t", &r1).unwrap();
        store.append("t", &r2).unwrap();

        let loaded = store.load("t").unwrap().unwrap();
        assert_eq!(loaded.snapshot, snap("t"));
        assert_eq!(loaded.journal, vec![r1.clone(), r2]);
        assert_eq!(loaded.torn_records, 0);

        // Compaction truncates the journal.
        store.put_snapshot(&snap("t")).unwrap();
        assert!(store.load("t").unwrap().unwrap().journal.is_empty());

        // Appends to unknown sessions are rejected, not silently dropped.
        assert!(matches!(
            store.append("ghost", &r1),
            Err(StoreError::UnknownSession(_))
        ));
    }

    #[test]
    fn sessions_enumerates_sorted_and_remove_forgets() {
        let store = MemoryStore::new();
        for name in ["c", "a", "b"] {
            store.put_snapshot(&snap(name)).unwrap();
        }
        assert_eq!(store.sessions().unwrap(), ["a", "b", "c"]);
        store.remove("b").unwrap();
        store.remove("b").unwrap(); // idempotent
        assert_eq!(store.sessions().unwrap(), ["a", "c"]);
        assert!(store.load("b").unwrap().is_none());
        store.sync().unwrap();
    }
}
