//! One tenant's live analysis session: an [`AnalysisEngine`] plus its
//! settings, with the snapshot/restore path used for LRU hibernation.
//!
//! Snapshots go through the engine's *read-only* model accessor
//! ([`AnalysisEngine::model`]) and the workspace JSON encoding — never
//! through `Clone`. Cloning the whole context would drag along matrices a
//! snapshot does not need, and although `EvalContext::clone` hands the
//! clone a fresh LP workspace (so the PR-4 stats mis-attribution cannot
//! recur — locked down by `cloned_engine_starts_with_fresh_lp_stats` in
//! `gmaa`), serializing just the model keeps hibernated sessions as small
//! as a workspace file.

use crate::protocol::{ServeError, SessionConfig, SessionSnapshot};
use crate::store::JournalRecord;
use gmaa::AnalysisEngine;
use maut::DecisionModel;

/// A live session: the engine that owns all per-tenant analysis state,
/// the session's settings, and its LRU clock tick.
#[derive(Debug)]
pub struct Session {
    pub(crate) engine: AnalysisEngine,
    pub(crate) config: SessionConfig,
    /// Shard-local logical time of the last request that touched this
    /// session (larger = more recent); the eviction scan takes the
    /// minimum.
    pub(crate) last_used: u64,
}

impl Session {
    /// Validate `model` and open a session over it.
    pub(crate) fn new(model: DecisionModel, config: SessionConfig) -> Result<Session, ServeError> {
        let mut engine = AnalysisEngine::new(model)?;
        engine.mc_trials = config.mc_trials;
        engine.mc_seed = config.mc_seed;
        engine.mc_threads = config.mc_threads;
        engine.stability_resolution = config.stability_resolution;
        Ok(Session {
            engine,
            config,
            last_used: 0,
        })
    }

    /// Capture the session as a [`SessionSnapshot`]: the mutated model in
    /// workspace JSON plus the settings. Edits are applied to the model in
    /// place, so the model alone carries every pending what-if.
    pub(crate) fn snapshot(&self, session: &str) -> Result<SessionSnapshot, ServeError> {
        Ok(SessionSnapshot {
            session: session.to_string(),
            model_json: gmaa::model_to_json(self.engine.model())?,
            config: self.config,
        })
    }

    /// Rebuild a session from its snapshot, first checking that the
    /// snapshot really belongs to `expected` — a misfiled store entry
    /// must not silently serve one tenant another tenant's model. The
    /// engine starts with cold caches (the first post-rehydration cycle
    /// is a full recompute), but every analysis result is identical to
    /// the never-evicted session's — the analyses are deterministic
    /// functions of model + seed.
    pub(crate) fn restore(
        snapshot: &SessionSnapshot,
        expected: &str,
    ) -> Result<Session, ServeError> {
        if snapshot.session != expected {
            return Err(ServeError::Snapshot(format!(
                "snapshot identity mismatch: loaded under {expected:?} but records session {:?}",
                snapshot.session
            )));
        }
        Session::new(
            gmaa::model_from_json(&snapshot.model_json)?,
            snapshot.config,
        )
    }

    /// Re-apply journaled edits, in order, on top of a restored snapshot.
    /// Records carry absolute values, so replaying an edit the snapshot
    /// already absorbed is a no-op.
    pub(crate) fn replay(&mut self, journal: &[JournalRecord]) -> Result<(), ServeError> {
        for record in journal {
            match record {
                JournalRecord::SetPerf(alternative, attr, perf) => {
                    self.engine.set_perf(*alternative, *attr, *perf)?;
                }
                JournalRecord::SetWeight(objective, weight) => {
                    self.engine.set_weight(*objective, *weight)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maut::prelude::*;

    fn model() -> DecisionModel {
        let mut b = DecisionModelBuilder::new("m");
        let x = b.discrete_attribute("x", "X", &["l", "m", "h"]);
        let y = b.discrete_attribute("y", "Y", &["l", "m", "h"]);
        b.attach_attributes_to_root(&[(x, Interval::new(0.4, 0.6)), (y, Interval::new(0.4, 0.6))]);
        b.alternative("a", vec![Perf::level(2), Perf::level(1)]);
        b.alternative("b", vec![Perf::level(0), Perf::level(2)]);
        b.build().unwrap()
    }

    #[test]
    fn snapshot_roundtrip_preserves_edits() {
        let mut s = Session::new(model(), SessionConfig::default()).unwrap();
        let x = s.engine.model().find_attribute("x").unwrap();
        s.engine.set_perf(1, x, Perf::level(2)).unwrap();

        let snap = s.snapshot("t").unwrap();
        let mut restored = Session::restore(&snap, "t").unwrap();
        assert_eq!(restored.engine.model(), s.engine.model());
        assert_eq!(restored.config, s.config);
        // The rehydrated session evaluates identically.
        assert_eq!(*restored.engine.evaluate(), *s.engine.evaluate());
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let s = Session::new(model(), SessionConfig::default()).unwrap();
        let mut snap = s.snapshot("t").unwrap();
        snap.model_json = "{ not json".into();
        assert!(matches!(
            Session::restore(&snap, "t"),
            Err(ServeError::Snapshot(_))
        ));
    }

    #[test]
    fn restore_rejects_identity_mismatch() {
        // A misfiled store entry (snapshot for tenant A loaded under
        // tenant B's key) must fail loudly, not serve A's model to B.
        let s = Session::new(model(), SessionConfig::default()).unwrap();
        let snap = s.snapshot("tenant-a").unwrap();
        let err = Session::restore(&snap, "tenant-b").unwrap_err();
        match err {
            ServeError::Snapshot(msg) => {
                assert!(
                    msg.contains("tenant-a") && msg.contains("tenant-b"),
                    "{msg}"
                );
            }
            other => panic!("expected Snapshot error, got {other:?}"),
        }
    }

    #[test]
    fn replay_reproduces_directly_applied_edits() {
        let mut direct = Session::new(model(), SessionConfig::default()).unwrap();
        let x = direct.engine.model().find_attribute("x").unwrap();
        let x_obj = direct.engine.model().tree.find("x").unwrap();
        direct.engine.set_perf(1, x, Perf::level(2)).unwrap();
        direct
            .engine
            .set_weight(x_obj, Interval::new(0.2, 0.8))
            .unwrap();

        let mut replayed = Session::new(model(), SessionConfig::default()).unwrap();
        replayed
            .replay(&[
                crate::store::JournalRecord::SetPerf(1, x, Perf::level(2)),
                crate::store::JournalRecord::SetWeight(x_obj, Interval::new(0.2, 0.8)),
            ])
            .unwrap();
        assert_eq!(replayed.engine.model(), direct.engine.model());
        assert_eq!(*replayed.engine.evaluate(), *direct.engine.evaluate());

        // A journal that no longer matches the model surfaces the model
        // error instead of corrupting the session.
        let mut bad = Session::new(model(), SessionConfig::default()).unwrap();
        assert!(bad
            .replay(&[crate::store::JournalRecord::SetPerf(99, x, Perf::level(0))])
            .is_err());
    }
}
