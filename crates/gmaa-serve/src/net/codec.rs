//! Frame codec: 4-byte big-endian length prefix + payload bytes.
//!
//! Serving-path code: no panics, no `[]` indexing — fixed-size reads
//! land in arrays that are destructured, never indexed.

use std::io::{self, Read, Write};

/// Why a frame could not be read.
#[derive(Debug)]
pub(crate) enum FrameError {
    /// The transport failed (includes a peer that vanished mid-frame).
    Io(io::Error),
    /// The length prefix exceeds the configured cap (or this target's
    /// address space). The payload was not consumed, so the stream is no
    /// longer aligned — the caller must close the connection after
    /// reporting the error.
    Oversized {
        /// The length the prefix announced. Held as `u64` so the exact
        /// attacker-supplied value survives even where it does not fit
        /// in `usize`.
        len: u64,
        /// The configured cap it broke.
        max: usize,
    },
}

/// Write one frame: length prefix, payload, flush.
pub(crate) fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::other("frame payload exceeds the u32 length prefix"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` is a clean close: the peer shut
/// the stream *between* frames. EOF mid-frame is an I/O error.
pub(crate) fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    // First prefix byte by hand so a clean close is distinguishable
    // from a torn one.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let mut rest = [0u8; 3];
    r.read_exact(&mut rest).map_err(FrameError::Io)?;
    let [b0] = first;
    let [b1, b2, b3] = rest;
    // The prefix is attacker-controlled: widen it losslessly, then prove
    // it fits both the cap and this target's usize before allocating.
    // No bare `as` — a narrowing cast here silently truncates a >4 GiB
    // announcement into a small allocation on 32-bit targets.
    let announced = u64::from(u32::from_be_bytes([b0, b1, b2, b3]));
    let len = match usize::try_from(announced) {
        Ok(len) if len <= max => len,
        _ => {
            return Err(FrameError::Oversized {
                len: announced,
                max,
            })
        }
    };
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = io::Cursor::new(buf);
        match read_frame(&mut r, 1024) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    /// The 4 GiB boundary: the largest possible announcement must be
    /// reported exactly (no truncation through a narrowing cast), and
    /// the cap must cut precisely between `max` and `max + 1`.
    #[test]
    fn four_gib_boundary_is_exact() {
        // 4 GiB - 1, the maximum encodable prefix, survives verbatim.
        let mut r = io::Cursor::new(u32::MAX.to_be_bytes().to_vec());
        match read_frame(&mut r, usize::MAX) {
            // Caps at or above 4 GiB only exist on 64-bit targets; there
            // the frame passes the cap and dies on the missing payload.
            Err(FrameError::Io(_)) if usize::try_from(u64::from(u32::MAX)).is_ok() => {}
            Err(FrameError::Oversized { len, .. }) => assert_eq!(len, (1u64 << 32) - 1),
            other => panic!("unexpected result {other:?}"),
        }

        // Exactly at the cap: accepted (fails later on the torn payload,
        // which proves the allocation path was taken, not the cap).
        let cap = 4096usize;
        let mut at = Vec::new();
        at.extend_from_slice(&u32::try_from(cap).unwrap().to_be_bytes());
        at.extend_from_slice(&vec![7u8; cap]);
        let mut r = io::Cursor::new(at);
        assert_eq!(read_frame(&mut r, cap).unwrap().unwrap().len(), cap);

        // One past the cap: rejected with the exact announced length.
        let mut over = Vec::new();
        over.extend_from_slice(&u32::try_from(cap + 1).unwrap().to_be_bytes());
        let mut r = io::Cursor::new(over);
        match read_frame(&mut r, cap) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u64::try_from(cap).unwrap() + 1);
                assert_eq!(max, cap);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_an_io_error_not_a_clean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Io(_))));
        // Torn inside the prefix itself, too.
        let mut r = io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Io(_))));
    }
}
