//! Frame codec: 4-byte big-endian length prefix + payload bytes.
//!
//! Serving-path code: no panics, no `[]` indexing — fixed-size reads
//! land in arrays that are destructured, never indexed.

use std::io::{self, Read, Write};

/// Why a frame could not be read.
#[derive(Debug)]
pub(crate) enum FrameError {
    /// The transport failed (includes a peer that vanished mid-frame).
    Io(io::Error),
    /// The length prefix exceeds the configured cap. The payload was
    /// not consumed, so the stream is no longer aligned — the caller
    /// must close the connection after reporting the error.
    Oversized {
        /// The length the prefix announced.
        len: usize,
        /// The configured cap it broke.
        max: usize,
    },
}

/// Write one frame: length prefix, payload, flush.
pub(crate) fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::other("frame payload exceeds the u32 length prefix"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` is a clean close: the peer shut
/// the stream *between* frames. EOF mid-frame is an I/O error.
pub(crate) fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    // First prefix byte by hand so a clean close is distinguishable
    // from a torn one.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let mut rest = [0u8; 3];
    r.read_exact(&mut rest).map_err(FrameError::Io)?;
    let [b0] = first;
    let [b1, b2, b3] = rest;
    let len = u32::from_be_bytes([b0, b1, b2, b3]) as usize;
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = io::Cursor::new(buf);
        match read_frame(&mut r, 1024) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_an_io_error_not_a_clean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Io(_))));
        // Torn inside the prefix itself, too.
        let mut r = io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Io(_))));
    }
}
