//! A small blocking client for the length-prefixed JSON protocol, used
//! by tests, the server's own smoke checks, and the closed-loop bench.

use super::codec::{read_frame, write_frame, FrameError};
use super::{WireRequest, WireResponse, DEFAULT_MAX_FRAME_BYTES};
use crate::protocol::{Request, Response, ServeError};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a [`Server`](super::Server).
///
/// [`Client::request`] is the synchronous call;
/// [`Client::send`]/[`Client::recv`] split it for pipelining (responses
/// arrive in send order). Transport failures surface as
/// [`ServeError::Protocol`] — on a failed connection the client should
/// be dropped and reconnected.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_frame_bytes: usize,
    /// Requests sent but not yet `recv`ed (pipelining depth).
    in_flight: usize,
}

fn transport(e: impl std::fmt::Display) -> ServeError {
    ServeError::Protocol(format!("transport: {e}"))
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            in_flight: 0,
        })
    }

    /// Requests sent but not yet received.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Send one request without waiting for its reply (pipelining).
    /// Replies arrive in send order via [`Client::recv`].
    pub fn send(&mut self, request: Request, deadline_ms: Option<u64>) -> Result<(), ServeError> {
        let wire = WireRequest::Api {
            request: Box::new(request),
            deadline_ms,
        };
        let json = serde_json::to_string(&wire).map_err(transport)?;
        write_frame(&mut self.writer, json.as_bytes()).map_err(transport)?;
        self.in_flight += 1;
        Ok(())
    }

    /// Receive the oldest in-flight request's reply.
    pub fn recv(&mut self) -> Result<Response, ServeError> {
        self.in_flight = self.in_flight.saturating_sub(1);
        match self.read_response()? {
            WireResponse::Ok(response) => Ok(response),
            WireResponse::Err(e) => Err(e),
            WireResponse::Drained { .. } => Err(ServeError::Protocol(
                "unexpected Drained reply to an API request".to_string(),
            )),
        }
    }

    /// Send one request and wait for its reply.
    pub fn request(&mut self, request: Request) -> Result<Response, ServeError> {
        self.request_with_deadline(request, None)
    }

    /// [`Client::request`] with a queue deadline in milliseconds.
    pub fn request_with_deadline(
        &mut self,
        request: Request,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ServeError> {
        self.send(request, deadline_ms)?;
        self.recv()
    }

    /// Ask the server to drain: close admission and flush every live
    /// session to the durable store. Returns the flushed-session count.
    /// All pipelined requests must have been `recv`ed first (replies
    /// are in order, so an outstanding one would be misread as the
    /// drain ack).
    pub fn drain(&mut self) -> Result<u64, ServeError> {
        if self.in_flight > 0 {
            return Err(ServeError::Protocol(format!(
                "drain with {} replies outstanding",
                self.in_flight
            )));
        }
        let json = serde_json::to_string(&WireRequest::Drain).map_err(transport)?;
        write_frame(&mut self.writer, json.as_bytes()).map_err(transport)?;
        match self.read_response()? {
            WireResponse::Drained { sessions } => Ok(sessions),
            WireResponse::Err(e) => Err(e),
            WireResponse::Ok(_) => Err(ServeError::Protocol(
                "unexpected API reply to a Drain request".to_string(),
            )),
        }
    }

    fn read_response(&mut self) -> Result<WireResponse, ServeError> {
        let payload = match read_frame(&mut self.reader, self.max_frame_bytes) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                return Err(ServeError::Protocol(
                    "server closed the connection".to_string(),
                ))
            }
            Err(FrameError::Io(e)) => return Err(transport(e)),
            Err(FrameError::Oversized { len, max }) => {
                return Err(ServeError::Protocol(format!(
                    "response frame of {len} bytes exceeds the {max}-byte cap"
                )))
            }
        };
        let text = std::str::from_utf8(&payload).map_err(transport)?;
        serde_json::from_str::<WireResponse>(text).map_err(transport)
    }
}
