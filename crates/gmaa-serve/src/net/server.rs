//! The TCP server: one acceptor thread, two threads per connection
//! (reader + in-order writer), all feeding the shared
//! [`SessionManager`].

use super::codec::{read_frame, write_frame, FrameError};
use super::{WireRequest, WireResponse, DEFAULT_MAX_FRAME_BYTES};
use crate::manager::{Pending, SessionManager};
use crate::protocol::ServeError;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Transport-level settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Cap on one frame's payload bytes, both directions
    /// ([`DEFAULT_MAX_FRAME_BYTES`] by default). An inbound prefix past
    /// it gets a typed [`ServeError::Protocol`] reply and the
    /// connection closes (the stream cannot be re-aligned).
    pub max_frame_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// A running TCP front end over a shared [`SessionManager`].
///
/// Dropping the server stops the acceptor; established connections keep
/// serving until their peers hang up (the manager outlives them through
/// its `Arc`).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections for `manager`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        manager: Arc<SessionManager>,
        config: NetConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let max_frame = config.max_frame_bytes;
        let acceptor = std::thread::Builder::new()
            .name("gmaa-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let manager = Arc::clone(&manager);
                    // A machine that cannot spawn a thread cannot serve
                    // this connection; dropping the stream refuses it.
                    let _ = std::thread::Builder::new()
                        .name("gmaa-serve-conn".to_string())
                        .spawn(move || serve_connection(stream, manager, max_frame));
                }
            })?;
        Ok(Server {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections and join the acceptor thread.
    /// Established connections keep serving until their peers hang up.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the acceptor out of its blocking accept with a throwaway
        // connection; if even that fails the listener is already dead.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// What the reader hands the writer, one entry per inbound frame, in
/// frame order.
enum Outcome {
    /// An admitted (or admission-rejected) API request; the writer
    /// waits for its reply.
    Pending(Pending),
    /// A reply that needs no waiting (drain acks, protocol errors).
    Ready(WireResponse),
    /// Send the reply, then close the connection (stream desynced).
    Fatal(WireResponse),
}

/// One connection's reader loop (runs on the connection thread; the
/// in-order writer runs on a sibling thread).
fn serve_connection(stream: TcpStream, manager: Arc<SessionManager>, max_frame: usize) {
    // Loopback benchmarking is latency-sensitive: without this, Nagle +
    // delayed ACK can put a 40 ms floor under small-frame round trips.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<Outcome>();
    let writer = std::thread::Builder::new()
        .name("gmaa-serve-conn-writer".to_string())
        .spawn(move || {
            let mut w = std::io::BufWriter::new(write_half);
            for outcome in rx {
                let (response, fatal) = match outcome {
                    Outcome::Pending(p) => {
                        let r = match p.wait() {
                            Ok(r) => WireResponse::Ok(r),
                            Err(e) => WireResponse::Err(e),
                        };
                        (r, false)
                    }
                    Outcome::Ready(r) => (r, false),
                    Outcome::Fatal(r) => (r, true),
                };
                let payload = match serde_json::to_string(&response) {
                    Ok(json) => json,
                    // A response that cannot be encoded degrades to a
                    // typed protocol error (hand-built JSON: encoding
                    // just failed, so no second trip through serde).
                    Err(_) => {
                        "{\"Err\":{\"Protocol\":\"response could not be encoded\"}}".to_string()
                    }
                };
                if write_frame(&mut w, payload.as_bytes()).is_err() || fatal {
                    return;
                }
            }
        });
    let Ok(writer) = writer else {
        return;
    };

    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, max_frame) {
            Ok(None) | Err(FrameError::Io(_)) => break,
            Ok(Some(payload)) => {
                if !dispatch_frame(&payload, &manager, &tx) {
                    break;
                }
            }
            Err(FrameError::Oversized { len, max }) => {
                // The payload was never read — the stream cannot be
                // re-aligned. Answer, then close.
                let _ = tx.send(Outcome::Fatal(WireResponse::Err(ServeError::Protocol(
                    format!("frame of {len} bytes exceeds the {max}-byte cap"),
                ))));
                break;
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// Decode and dispatch one inbound frame. `false` means the connection
/// should close (the writer already has the final reply, if any).
fn dispatch_frame(payload: &[u8], manager: &Arc<SessionManager>, tx: &Sender<Outcome>) -> bool {
    let parsed = std::str::from_utf8(payload)
        .map_err(|e| format!("frame is not UTF-8: {e}"))
        .and_then(|text| {
            serde_json::from_str::<WireRequest>(text)
                .map_err(|e| format!("invalid request JSON: {e}"))
        });
    let outcome = match parsed {
        Ok(WireRequest::Api {
            request,
            deadline_ms,
        }) => Outcome::Pending(
            manager.submit_with_deadline(*request, deadline_ms.map(Duration::from_millis)),
        ),
        Ok(WireRequest::Drain) => {
            let response = match manager.shutdown() {
                Ok(sessions) => WireResponse::Drained { sessions },
                Err(e) => WireResponse::Err(e),
            };
            Outcome::Ready(response)
        }
        // Malformed content in a well-formed frame: typed reply, keep
        // the connection — framing is still aligned.
        Err(msg) => Outcome::Ready(WireResponse::Err(ServeError::Protocol(msg))),
    };
    tx.send(outcome).is_ok()
}
