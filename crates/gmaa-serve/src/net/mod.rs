//! The TCP front end: a length-prefixed JSON wire protocol over the
//! in-process [`SessionManager`](crate::SessionManager) API.
//!
//! # Frame format
//!
//! Every message (both directions) is one *frame*: a 4-byte big-endian
//! payload length followed by that many bytes of UTF-8 JSON. Requests
//! decode to [`WireRequest`], responses encode from [`WireResponse`] —
//! externally-tagged enums wrapping the existing typed protocol
//! ([`Request`] / [`Response`] /
//! [`ServeError`]), so the wire carries exactly the
//! in-process protocol plus a transport envelope.
//!
//! # Pipelining
//!
//! A connection may send frames back-to-back without waiting: the
//! server's per-connection reader thread feeds each request straight
//! into the manager's pipelined
//! [`submit_with_deadline`](crate::SessionManager::submit_with_deadline)
//! path (admission control included — a shed request resolves its reply
//! immediately), and a per-connection writer thread sends responses
//! back **in request order**.
//!
//! # Degradation
//!
//! Malformed JSON gets a typed
//! [`ServeError::Protocol`] response and
//! the connection keeps serving (framing is still aligned). An
//! oversized length prefix also gets the typed response, but then the
//! connection closes: the payload was never read, so the stream cannot
//! be re-synchronized. Neither ever panics a thread — the
//! `no-panic-in-serving` lint covers this module and the server binary.
//!
//! # Shutdown
//!
//! A [`WireRequest::Drain`] control frame (or dropping the
//! [`Server`]) triggers [`SessionManager::shutdown`](crate::SessionManager::shutdown):
//! admission closes, live sessions flush to the durable store, and the
//! reply reports how many sessions were drained. In-flight requests
//! still get their replies; later ones get
//! [`ServeError::Shutdown`].

mod client;
mod codec;
mod server;

pub use client::Client;
pub use server::{NetConfig, Server};

use crate::protocol::{Request, Response, ServeError};
use serde::{Deserialize, Serialize};

/// Default cap on a single frame's payload (4 MiB) — comfortably above
/// any real model JSON, far below anything that could exhaust memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// One client→server frame.
#[derive(Debug, Serialize, Deserialize)]
pub enum WireRequest {
    /// An API request, answered by exactly one [`WireResponse::Ok`] /
    /// [`WireResponse::Err`] frame (in request order).
    Api {
        /// The typed request, routed through admission control to its
        /// session's shard. Boxed: `CreateSession` carries a whole
        /// model, dwarfing every other variant.
        request: Box<Request>,
        /// Optional queue deadline in milliseconds (see
        /// [`SessionManager::submit_with_deadline`](crate::SessionManager::submit_with_deadline)).
        deadline_ms: Option<u64>,
    },
    /// Graceful shutdown: close admission, flush every live session to
    /// the durable store, and answer [`WireResponse::Drained`] with the
    /// flushed-session count.
    Drain,
}

/// One server→client frame.
#[derive(Debug, Serialize, Deserialize)]
pub enum WireResponse {
    /// The request succeeded.
    Ok(Response),
    /// The request failed — including admission rejections
    /// ([`ServeError::Overloaded`],
    /// [`ServeError::QuotaExceeded`],
    /// [`ServeError::DeadlineExceeded`])
    /// and transport problems
    /// ([`ServeError::Protocol`]).
    Err(ServeError),
    /// Reply to [`WireRequest::Drain`].
    Drained {
        /// Sessions flushed to the store by the drain.
        sessions: u64,
    },
}
