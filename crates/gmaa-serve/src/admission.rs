//! Admission control: everything that can say *no* before a request
//! reaches a shard worker.
//!
//! Three gates run in order at [`SessionManager::submit`](crate::SessionManager::submit)
//! time, all on the caller's thread, none touching an engine:
//!
//! 1. **Shutdown** — a draining/dropping manager admits nothing
//!    ([`ServeError::Shutdown`](crate::ServeError::Shutdown)).
//! 2. **Tenant quota** — a token bucket per session name
//!    ([`TenantQuota`]); an empty bucket rejects with
//!    [`ServeError::QuotaExceeded`](crate::ServeError::QuotaExceeded).
//! 3. **Queue capacity** — each shard's [`ShardGate`] counts admitted
//!    requests still in its channel; at capacity the request is shed
//!    with [`ServeError::Overloaded`](crate::ServeError::Overloaded)
//!    instead of growing the queue.
//!
//! Admitted requests carry their admission instant; the worker checks
//! the request's deadline at *dequeue* and answers
//! [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded)
//! for requests that queued too long, without touching the engine.
//!
//! The gate is all atomics (no locks on the submit path except the
//! token-bucket map, which no worker ever takes), so admission never
//! blocks behind a busy shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// A per-tenant token-bucket request quota, keyed by session name (one
/// session = one tenant workload). Checked at admission, before the
/// queue-capacity gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained request rate: tokens refilled per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest burst admitted from a full bucket.
    pub burst: f64,
}

impl TenantQuota {
    /// A quota that admits `rate_per_sec` sustained with a burst of the
    /// same size (clamped to at least one token so a fresh tenant can
    /// always send one request).
    pub fn per_second(rate_per_sec: f64) -> TenantQuota {
        TenantQuota {
            rate_per_sec,
            burst: rate_per_sec.max(1.0),
        }
    }
}

/// One shard's admission gate: queue-depth accounting plus the
/// rejection counters, shared (via `Arc`) between the manager's submit
/// path and the shard worker.
///
/// The manager increments `depth` on admission; the worker decrements
/// it when it dequeues the command — so `depth` is exactly the number
/// of admitted-but-not-yet-dequeued requests, and the channel behind it
/// is effectively bounded even though `mpsc::channel` itself is not.
#[derive(Debug)]
pub(crate) struct ShardGate {
    capacity: usize,
    depth: AtomicUsize,
    high_water: AtomicUsize,
    rejected_overload: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_deadline: AtomicU64,
}

impl ShardGate {
    pub(crate) fn new(capacity: usize) -> ShardGate {
        ShardGate {
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
        }
    }

    /// Reserve one queue slot. `Err(depth)` means the queue is at
    /// capacity and the request must be shed (the overload counter is
    /// already bumped).
    pub(crate) fn try_admit(&self) -> Result<(), usize> {
        let mut depth = self.depth.load(Ordering::Relaxed);
        loop {
            if depth >= self.capacity {
                self.rejected_overload.fetch_add(1, Ordering::Relaxed);
                return Err(depth);
            }
            // `depth < capacity` here, so the increment cannot actually
            // wrap; saturating arithmetic keeps the wire-safety bar
            // without a panic branch on the admission fast path.
            match self.depth.compare_exchange_weak(
                depth,
                depth.saturating_add(1),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.high_water
                        .fetch_max(depth.saturating_add(1), Ordering::AcqRel);
                    return Ok(());
                }
                Err(actual) => depth = actual,
            }
        }
    }

    /// Release a reserved slot (worker side, at dequeue — or manager
    /// side if the send itself failed after admission).
    pub(crate) fn release(&self) {
        // Saturating: a release without a matching admit would wrap the
        // counter and jam the gate open or shut forever.
        let mut depth = self.depth.load(Ordering::Relaxed);
        while depth > 0 {
            match self.depth.compare_exchange_weak(
                depth,
                depth - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => depth = actual,
            }
        }
    }

    pub(crate) fn count_quota_rejection(&self) {
        self.rejected_quota.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_deadline_rejection(&self) {
        self.rejected_deadline.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn queued_now(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    pub(crate) fn queue_high_water(&self) -> usize {
        self.high_water.load(Ordering::Acquire)
    }

    pub(crate) fn rejected_overload(&self) -> u64 {
        self.rejected_overload.load(Ordering::Relaxed)
    }

    pub(crate) fn rejected_quota(&self) -> u64 {
        self.rejected_quota.load(Ordering::Relaxed)
    }

    pub(crate) fn rejected_deadline(&self) -> u64 {
        self.rejected_deadline.load(Ordering::Relaxed)
    }
}

/// One tenant's bucket: current tokens plus the last refill instant.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// The manager's token-bucket table, keyed by session name. Taken only
/// on the submit path (never by a worker), and never held across a
/// channel operation.
#[derive(Debug, Default)]
pub(crate) struct TokenBuckets {
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TokenBuckets {
    fn locked(&self) -> MutexGuard<'_, HashMap<String, Bucket>> {
        // A panic while holding this lock cannot corrupt the map (the
        // only writes are complete f64/Instant stores), so poisoning is
        // recoverable by construction.
        match self.buckets.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Take one token from `tenant`'s bucket (refilling it first),
    /// creating a full bucket on first sight. `false` means the bucket
    /// is empty and the request must be rejected.
    pub(crate) fn take(&self, tenant: &str, quota: TenantQuota, now: Instant) -> bool {
        let burst = quota.burst.max(1.0);
        let mut buckets = self.locked();
        let bucket = buckets.entry(tenant.to_string()).or_insert_with(|| Bucket {
            tokens: burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * quota.rate_per_sec).min(burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn gate_admits_to_capacity_then_sheds() {
        let gate = ShardGate::new(2);
        assert!(gate.try_admit().is_ok());
        assert!(gate.try_admit().is_ok());
        assert_eq!(gate.try_admit(), Err(2));
        assert_eq!(gate.queued_now(), 2);
        assert_eq!(gate.queue_high_water(), 2);
        assert_eq!(gate.rejected_overload(), 1);
        gate.release();
        assert!(gate.try_admit().is_ok());
        // High water never exceeds capacity.
        assert_eq!(gate.queue_high_water(), 2);
    }

    #[test]
    fn gate_release_saturates_at_zero() {
        let gate = ShardGate::new(1);
        gate.release();
        assert_eq!(gate.queued_now(), 0);
        assert!(gate.try_admit().is_ok());
    }

    #[test]
    fn bucket_enforces_burst_then_refills() {
        let buckets = TokenBuckets::default();
        let quota = TenantQuota {
            rate_per_sec: 10.0,
            burst: 2.0,
        };
        let t0 = Instant::now();
        assert!(buckets.take("a", quota, t0));
        assert!(buckets.take("a", quota, t0));
        assert!(!buckets.take("a", quota, t0), "burst of 2 admitted a 3rd");
        // Another tenant has its own bucket.
        assert!(buckets.take("b", quota, t0));
        // 100ms at 10/s refills one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(buckets.take("a", quota, t1));
        assert!(!buckets.take("a", quota, t1));
    }
}
