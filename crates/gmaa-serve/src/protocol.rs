//! The typed request/response protocol between clients and shard workers.
//!
//! Every request names the session it addresses; the
//! [`SessionManager`](crate::SessionManager) hashes that name to pick the
//! owning shard, so requests for the same session are always serialized
//! through the same worker thread (no engine is ever shared across
//! threads). Edit requests ([`Request::SetPerf`], [`Request::SetWeight`])
//! only mark state dirty; the next [`Request::Analyze`] /
//! [`Request::DiscardCycle`] routes through the engine's incremental
//! entry points, so a typical edit→analyze round trip re-optimizes a
//! handful of pairs instead of recomputing the whole cycle.

use gmaa::{Analysis, DiscardCycle, WorkspaceError};
use maut::{AttributeId, DecisionModel, Interval, ModelError, ObjectiveId, Perf};
use maut_sense::{LpError, MonteCarloResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-session analysis settings, applied when the session is created and
/// preserved across hibernation (they travel inside the
/// [`SessionSnapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Monte Carlo trials used by [`Request::Analyze`]'s simulation stage.
    pub mc_trials: usize,
    /// Seed of the Monte Carlo stage (results are seed-deterministic, so
    /// a rehydrated session reproduces its pre-eviction simulations).
    pub mc_seed: u64,
    /// Worker threads of the Monte Carlo stage. Defaults to `1`: shard
    /// workers are themselves threads, so nested fan-out only pays on
    /// machines with many more cores than shards.
    pub mc_threads: usize,
    /// Scan resolution of the weight-stability stage.
    pub stability_resolution: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            mc_trials: 10_000,
            mc_seed: 20120402,
            mc_threads: 1,
            stability_resolution: 100,
        }
    }
}

/// A hibernated session: everything needed to rebuild its engine with
/// identical analysis results — the mutated model (edits are applied to
/// the model in place, so no separate edit log is needed) plus the
/// session's analysis settings. Produced by LRU eviction and by
/// [`Request::Snapshot`]; consumed transparently on the session's next
/// request or explicitly via restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The session's name.
    pub session: String,
    /// The model state, in the same JSON encoding as
    /// [`gmaa::workspace`] files ([`gmaa::model_to_json`]).
    pub model_json: String,
    /// The session's analysis settings.
    pub config: SessionConfig,
}

/// A request addressed to one session.
///
/// Serializable: the TCP front end ([`crate::net`]) ships requests as
/// length-prefixed JSON frames with exactly this shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Open a session owning a validated copy of `model`. Fails with
    /// [`ServeError::DuplicateSession`] if the name is taken (live or
    /// hibernated) on its shard.
    CreateSession {
        /// Session name (also the routing key).
        session: String,
        /// The decision model the session will analyze.
        model: DecisionModel,
    },
    /// What-if edit of one performance cell (routes to
    /// `AnalysisEngine::set_perf`; the next analysis re-optimizes only the
    /// touched pairs).
    SetPerf {
        /// Session name.
        session: String,
        /// Alternative (row) index.
        alternative: usize,
        /// Attribute (column) to change.
        attr: AttributeId,
        /// New performance value.
        perf: Perf,
    },
    /// What-if edit of one objective's local weight interval (routes to
    /// `AnalysisEngine::set_weight`; invalidates every pair, so the next
    /// analysis is a full recompute).
    SetWeight {
        /// Session name.
        session: String,
        /// Objective whose local weight changes.
        objective: ObjectiveId,
        /// New weight interval.
        weight: Interval,
    },
    /// Run the complete analysis bundle (evaluation, stability, discard
    /// cycle, Monte Carlo) through `AnalysisEngine::analyze_incremental`.
    Analyze {
        /// Session name.
        session: String,
    },
    /// Run just the Section V discard pipeline through
    /// `AnalysisEngine::discard_cycle_incremental`.
    DiscardCycle {
        /// Session name.
        session: String,
    },
    /// Run a Monte Carlo simulation with an explicit trial count (the
    /// session's seed and thread settings apply; the session's own
    /// `mc_trials` is untouched).
    MonteCarlo {
        /// Session name.
        session: String,
        /// Number of weight-sampling trials.
        trials: usize,
    },
    /// Capture the session's current state as a [`SessionSnapshot`]
    /// without closing it.
    Snapshot {
        /// Session name.
        session: String,
    },
    /// Close the session and drop its state (live or hibernated). Its
    /// accumulated counters stay in the shard's statistics.
    CloseSession {
        /// Session name.
        session: String,
    },
}

/// Discriminant of a [`Request`], used for per-kind counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// [`Request::CreateSession`]
    Create,
    /// [`Request::SetPerf`]
    SetPerf,
    /// [`Request::SetWeight`]
    SetWeight,
    /// [`Request::Analyze`]
    Analyze,
    /// [`Request::DiscardCycle`]
    DiscardCycle,
    /// [`Request::MonteCarlo`]
    MonteCarlo,
    /// [`Request::Snapshot`]
    Snapshot,
    /// [`Request::CloseSession`]
    Close,
}

impl Request {
    /// The session this request addresses — the shard routing key.
    pub fn session(&self) -> &str {
        match self {
            Request::CreateSession { session, .. }
            | Request::SetPerf { session, .. }
            | Request::SetWeight { session, .. }
            | Request::Analyze { session }
            | Request::DiscardCycle { session }
            | Request::MonteCarlo { session, .. }
            | Request::Snapshot { session }
            | Request::CloseSession { session } => session,
        }
    }

    /// The request's counter discriminant.
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::CreateSession { .. } => RequestKind::Create,
            Request::SetPerf { .. } => RequestKind::SetPerf,
            Request::SetWeight { .. } => RequestKind::SetWeight,
            Request::Analyze { .. } => RequestKind::Analyze,
            Request::DiscardCycle { .. } => RequestKind::DiscardCycle,
            Request::MonteCarlo { .. } => RequestKind::MonteCarlo,
            Request::Snapshot { .. } => RequestKind::Snapshot,
            Request::CloseSession { .. } => RequestKind::Close,
        }
    }
}

/// A successful reply (the [`Request`] variant determines which arm).
#[derive(Debug, Serialize, Deserialize)]
pub enum Response {
    /// The session was created.
    Created,
    /// The edit was applied.
    Edited,
    /// The full analysis bundle.
    Analysis(Box<Analysis>),
    /// The discard-cycle result.
    Cycle(Box<DiscardCycle>),
    /// The Monte Carlo result.
    MonteCarlo(Box<MonteCarloResult>),
    /// The captured snapshot.
    Snapshot(Box<SessionSnapshot>),
    /// The session was closed.
    Closed,
}

/// Errors a request can fail with.
#[derive(Debug, Serialize, Deserialize)]
pub enum ServeError {
    /// No live or hibernated session of that name on its shard.
    UnknownSession(String),
    /// [`Request::CreateSession`] with a name that is already taken.
    DuplicateSession(String),
    /// The model or an edit was rejected (invalid cell, infeasible
    /// weights, failed validation on create/rehydrate).
    Model(ModelError),
    /// A request parameter is invalid (e.g. a zero-trial Monte Carlo).
    /// Session-local: the session is untouched.
    InvalidRequest(String),
    /// LP solver breakdown inside an analysis — never a legitimate
    /// analysis outcome, see [`maut_sense::potential`].
    Lp(LpError),
    /// A snapshot could not be encoded or decoded, or a loaded snapshot
    /// failed its identity check.
    Snapshot(String),
    /// The durable session store failed (I/O, encoding, or corrupt
    /// state). The in-memory session, if any, is still intact.
    Store(crate::store::StoreError),
    /// The owning shard's worker is gone (the manager was shut down, or
    /// the worker panicked).
    ShardDown,
    /// The shard's admission queue is full. The request was shed at
    /// submission time without queueing; retry after backing off.
    Overloaded {
        /// Index of the shard whose queue is full.
        shard: usize,
        /// Queue depth observed at rejection (equals the configured
        /// capacity).
        depth: usize,
    },
    /// The tenant's token bucket is empty — the session has exceeded its
    /// sustained request rate (see [`TenantQuota`](crate::TenantQuota)).
    QuotaExceeded {
        /// The session (tenant key) whose quota ran out.
        session: String,
    },
    /// The request waited in its shard's queue past its deadline and was
    /// answered without touching the engine.
    DeadlineExceeded,
    /// The manager is shutting down (dropped or drained): admission is
    /// closed, and requests still queued at shutdown are answered with
    /// this instead of being silently dropped.
    Shutdown,
    /// The transport-level request could not be understood: malformed
    /// frame, oversized payload, or invalid JSON. Connection-local — the
    /// server keeps serving.
    Protocol(String),
    /// A shard-side invariant broke. The request failed but the shard
    /// keeps serving — this is the typed fallback the serving path uses
    /// instead of panicking (see `docs/INVARIANTS.md`, rule
    /// `no-panic-in-serving`).
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession(s) => write!(f, "unknown session {s:?}"),
            ServeError::DuplicateSession(s) => write!(f, "session {s:?} already exists"),
            ServeError::Model(e) => write!(f, "model rejected: {e}"),
            ServeError::InvalidRequest(e) => write!(f, "invalid request: {e}"),
            ServeError::Lp(e) => write!(f, "LP solver breakdown: {e}"),
            ServeError::Snapshot(e) => write!(f, "snapshot failed: {e}"),
            ServeError::Store(e) => write!(f, "session store failed: {e}"),
            ServeError::ShardDown => write!(f, "shard worker is gone"),
            ServeError::Overloaded { shard, depth } => {
                write!(f, "shard {shard} overloaded (queue depth {depth})")
            }
            ServeError::QuotaExceeded { session } => {
                write!(f, "session {session:?} exceeded its request quota")
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded while queued"),
            ServeError::Shutdown => write!(f, "manager is shutting down; admission closed"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Internal(m) => write!(f, "internal shard invariant broke: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> ServeError {
        ServeError::Model(e)
    }
}

impl From<LpError> for ServeError {
    fn from(e: LpError) -> ServeError {
        ServeError::Lp(e)
    }
}

impl From<crate::store::StoreError> for ServeError {
    fn from(e: crate::store::StoreError) -> ServeError {
        ServeError::Store(e)
    }
}

impl From<WorkspaceError> for ServeError {
    fn from(e: WorkspaceError) -> ServeError {
        match e {
            WorkspaceError::Invalid(m) => ServeError::Model(m),
            other => ServeError::Snapshot(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_names_its_session_and_kind() {
        let reqs = [
            (
                Request::Analyze {
                    session: "a".into(),
                },
                RequestKind::Analyze,
            ),
            (
                Request::DiscardCycle {
                    session: "a".into(),
                },
                RequestKind::DiscardCycle,
            ),
            (
                Request::MonteCarlo {
                    session: "a".into(),
                    trials: 10,
                },
                RequestKind::MonteCarlo,
            ),
            (
                Request::Snapshot {
                    session: "a".into(),
                },
                RequestKind::Snapshot,
            ),
            (
                Request::CloseSession {
                    session: "a".into(),
                },
                RequestKind::Close,
            ),
        ];
        for (r, kind) in reqs {
            assert_eq!(r.session(), "a");
            assert_eq!(r.kind(), kind);
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ServeError::UnknownSession("x".into())
            .to_string()
            .contains("x"));
        assert!(ServeError::ShardDown.to_string().contains("shard"));
    }
}
