//! `gmaa-serve` — the TCP session server.
//!
//! ```text
//! gmaa-serve [--addr HOST:PORT] [--shards N] [--store DIR]
//!            [--queue-capacity N] [--quota-rps F] [--deadline-ms N]
//! ```
//!
//! Serves the length-prefixed JSON protocol (see `gmaa_serve::net`)
//! until a client sends a `Drain` control frame, then flushes every
//! session to the store (if one is configured) and exits. Without
//! `--store`, sessions live only as long as the process.

// A CLI's stdout/stderr are its user interface; the print bans guard
// the serving library, not this binary.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use gmaa_serve::net::{NetConfig, Server};
use gmaa_serve::{FileStore, FsyncPolicy, ServeConfig, SessionManager, TenantQuota};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    shards: Option<usize>,
    store: Option<PathBuf>,
    queue_capacity: Option<usize>,
    quota_rps: Option<f64>,
    deadline_ms: Option<u64>,
}

fn usage() -> &'static str {
    "usage: gmaa-serve [--addr HOST:PORT] [--shards N] [--store DIR]\n       \
     [--queue-capacity N] [--quota-rps F] [--deadline-ms N]"
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7411".to_string(),
        shards: None,
        store: None,
        queue_capacity: None,
        quota_rps: None,
        deadline_ms: None,
    };
    argv.next(); // program name
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shards" => {
                args.shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                );
            }
            "--store" => args.store = Some(PathBuf::from(value("--store")?)),
            "--queue-capacity" => {
                args.queue_capacity = Some(
                    value("--queue-capacity")?
                        .parse()
                        .map_err(|e| format!("--queue-capacity: {e}"))?,
                );
            }
            "--quota-rps" => {
                args.quota_rps = Some(
                    value("--quota-rps")?
                        .parse()
                        .map_err(|e| format!("--quota-rps: {e}"))?,
                );
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn run(args: Args) -> Result<(), String> {
    let mut config = ServeConfig::default();
    if let Some(shards) = args.shards {
        config.shards = shards;
    }
    if let Some(cap) = args.queue_capacity {
        config.queue_capacity = cap;
    }
    if let Some(rps) = args.quota_rps {
        config.quota = Some(TenantQuota::per_second(rps));
    }
    config.default_deadline_ms = args.deadline_ms;

    let manager = match &args.store {
        Some(dir) => {
            let store = FileStore::open(dir, FsyncPolicy::Always)
                .map_err(|e| format!("open store {}: {e}", dir.display()))?;
            SessionManager::with_store(config, Arc::new(store))
                .map_err(|e| format!("recover sessions: {e}"))?
        }
        None => SessionManager::new(config),
    };
    let manager = Arc::new(manager);

    let server = Server::bind(&args.addr, Arc::clone(&manager), NetConfig::default())
        .map_err(|e| format!("bind {}: {e}", args.addr))?;
    println!(
        "gmaa-serve listening on {} ({} shards, queue capacity {}, store: {})",
        server.local_addr(),
        manager.shards(),
        config.queue_capacity,
        args.store
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "none".to_string()),
    );

    // Serve until a Drain control frame closes admission, then exit;
    // in-flight requests got their replies before shutdown() returned
    // the drain ack.
    while !manager.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("gmaa-serve drained; exiting");
    drop(server);
    Ok(())
}

fn main() -> ExitCode {
    match parse_args(std::env::args()).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
