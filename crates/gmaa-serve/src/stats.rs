//! Per-shard and aggregate serving counters.
//!
//! Each shard worker owns its counters (no atomics — a shard is one
//! thread), accumulates retired sessions' engine counters on
//! eviction/close, and reports a [`ShardStats`] on demand;
//! [`ServeStats`] glues the shard reports together. Counters for live
//! sessions are read straight from their engines at report time, so
//! `aggregate` always reflects the work actually done, never a stale
//! accumulation.

use gmaa::CycleStats;
use maut_sense::SolveStats;

/// Requests handled, split by kind. All counts include failed requests
/// (a rejected edit still cost the shard a round trip).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestCounts {
    /// `CreateSession` requests.
    pub create: u64,
    /// `SetPerf` requests.
    pub set_perf: u64,
    /// `SetWeight` requests.
    pub set_weight: u64,
    /// `Analyze` requests.
    pub analyze: u64,
    /// `DiscardCycle` requests.
    pub discard_cycle: u64,
    /// `MonteCarlo` requests.
    pub monte_carlo: u64,
    /// `Snapshot` requests.
    pub snapshot: u64,
    /// `CloseSession` requests.
    pub close: u64,
}

impl RequestCounts {
    /// Requests of every kind.
    pub fn total(&self) -> u64 {
        self.create
            + self.set_perf
            + self.set_weight
            + self.analyze
            + self.discard_cycle
            + self.monte_carlo
            + self.snapshot
            + self.close
    }

    /// Fold another shard's counts into this one.
    pub fn merge(&mut self, other: &RequestCounts) {
        self.create += other.create;
        self.set_perf += other.set_perf;
        self.set_weight += other.set_weight;
        self.analyze += other.analyze;
        self.discard_cycle += other.discard_cycle;
        self.monte_carlo += other.monte_carlo;
        self.snapshot += other.snapshot;
        self.close += other.close;
    }
}

/// Durable-store activity of one shard. All zeros when the shard runs
/// without a [`SessionStore`](crate::SessionStore).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Compacted snapshots written (create, eviction, drain, and journal
    /// fallback).
    pub snapshots_written: u64,
    /// Edit records appended to write-ahead journals.
    pub journal_appends: u64,
    /// Journal records replayed during store-backed rehydration.
    pub records_replayed: u64,
    /// Torn trailing journal records dropped during recovery (a crash
    /// mid-append).
    pub torn_records_dropped: u64,
    /// Sessions rehydrated from the store (as opposed to from shard
    /// memory).
    pub sessions_recovered: u64,
    /// Store operations that failed; each one also shows up as a
    /// degraded code path (a failed append falls back to a full
    /// snapshot, a failed eviction keeps the session live).
    pub store_errors: u64,
}

impl StoreStats {
    /// Fold another shard's store counters into this one.
    pub fn merge(&mut self, other: &StoreStats) {
        self.snapshots_written += other.snapshots_written;
        self.journal_appends += other.journal_appends;
        self.records_replayed += other.records_replayed;
        self.torn_records_dropped += other.torn_records_dropped;
        self.sessions_recovered += other.sessions_recovered;
        self.store_errors += other.store_errors;
    }
}

/// Wall-clock service-time accounting for one shard's worker thread —
/// the signal the queue-depth counters cannot give: a whale tenant's
/// shard shows the same `queued_now` as a minnow's while burning orders
/// of magnitude more engine time. This is the measurement groundwork for
/// load-aware routing (see ROADMAP): `busy_ns / served_requests` is the
/// shard's mean service time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Nanoseconds the worker spent inside request handling (engine
    /// work, store I/O, snapshot encoding) — queue wait time excluded.
    pub busy_ns: u64,
    /// Requests that reached the handler. Unlike
    /// [`ShardStats::requests`], admission rejections *and* queue-level
    /// deadline expiries are excluded: this denominator only counts
    /// requests that consumed engine time.
    pub served_requests: u64,
}

impl LoadStats {
    /// Fold another shard's load counters into this one.
    pub fn merge(&mut self, other: &LoadStats) {
        self.busy_ns += other.busy_ns;
        self.served_requests += other.served_requests;
    }

    /// Mean nanoseconds per served request (`None` before any request).
    pub fn mean_service_ns(&self) -> Option<f64> {
        (self.served_requests > 0).then(|| self.busy_ns as f64 / self.served_requests as f64)
    }
}

/// One shard's counters at a point in time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// The shard's index in the manager.
    pub shard: usize,
    /// Sessions currently resident (engine in memory).
    pub live_sessions: usize,
    /// Sessions currently hibernated in shard memory (snapshot only).
    /// With a store configured this stays 0 — evicted snapshots spill to
    /// the store instead.
    pub hibernated_sessions: usize,
    /// Sessions whose state currently lives in the durable store (not
    /// resident on the shard).
    pub stored_sessions: usize,
    /// Sessions ever created on this shard.
    pub sessions_created: u64,
    /// LRU evictions (live session → snapshot).
    pub evictions: u64,
    /// Transparent rehydrations (snapshot → live session).
    pub rehydrations: u64,
    /// Requests admitted but not yet picked up by the worker — the
    /// shard's queue depth at report time. Always ≤ the configured
    /// queue capacity.
    pub queued_now: usize,
    /// The deepest the shard's queue has ever been. Bounded by the
    /// configured capacity: if this equals the capacity, the shard has
    /// shed load at least once.
    pub queue_high_water: usize,
    /// Requests rejected at admission because the queue was full
    /// ([`ServeError::Overloaded`](crate::ServeError::Overloaded)).
    pub rejected_overload: u64,
    /// Requests rejected at admission because the tenant's token bucket
    /// was empty ([`ServeError::QuotaExceeded`](crate::ServeError::QuotaExceeded)).
    pub rejected_quota: u64,
    /// Admitted requests answered `DeadlineExceeded` at dequeue because
    /// they waited in the queue past their deadline (the engine was
    /// never touched).
    pub rejected_deadline: u64,
    /// Requests handled, by kind. Rejections at admission (overload,
    /// quota) never reach the worker and are *not* counted here;
    /// deadline expiries are (they cost a queue slot and a dequeue).
    pub requests: RequestCounts,
    /// Incremental-vs-full discard-cycle counts across the shard's
    /// sessions (live engines + retired accumulations).
    pub cycles: CycleStats,
    /// LP solver counters across the shard's sessions (warm/cold solves
    /// and pivots).
    pub lp: SolveStats,
    /// Durable-store activity (all zeros without a store).
    pub store: StoreStats,
    /// Worker service-time accounting (busy time and served requests).
    pub load: LoadStats,
}

impl ShardStats {
    /// Fold another shard's counters into this one (used by
    /// [`ServeStats::aggregate`]; `shard` keeps the receiver's index).
    /// Counters sum, except `queue_high_water`, which takes the max —
    /// "deepest queue anywhere" is the number to compare against the
    /// per-shard capacity.
    pub fn merge(&mut self, other: &ShardStats) {
        self.live_sessions += other.live_sessions;
        self.hibernated_sessions += other.hibernated_sessions;
        self.stored_sessions += other.stored_sessions;
        self.sessions_created += other.sessions_created;
        self.evictions += other.evictions;
        self.rehydrations += other.rehydrations;
        self.queued_now += other.queued_now;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.rejected_overload += other.rejected_overload;
        self.rejected_quota += other.rejected_quota;
        self.rejected_deadline += other.rejected_deadline;
        self.requests.merge(&other.requests);
        self.cycles.incremental += other.cycles.incremental;
        self.cycles.full += other.cycles.full;
        self.lp.merge(&other.lp);
        self.store.merge(&other.store);
        self.load.merge(&other.load);
    }
}

/// The manager-level view: one [`ShardStats`] per shard, in shard order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl ServeStats {
    /// Sum of every shard's counters (the `shard` field of the result is
    /// the shard count, purely informational).
    pub fn aggregate(&self) -> ShardStats {
        let mut total = ShardStats {
            shard: self.shards.len(),
            ..ShardStats::default()
        };
        for s in &self.shards {
            total.merge(s);
        }
        total
    }

    /// Incremental share of all discard cycles served (`None` before any
    /// cycle ran) — the headline number for the what-if serving path.
    pub fn incremental_hit_rate(&self) -> Option<f64> {
        self.aggregate().cycles.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_across_shards() {
        let a = ShardStats {
            live_sessions: 2,
            stored_sessions: 3,
            queued_now: 1,
            queue_high_water: 7,
            rejected_overload: 4,
            rejected_quota: 2,
            rejected_deadline: 1,
            store: StoreStats {
                journal_appends: 10,
                snapshots_written: 2,
                ..StoreStats::default()
            },
            requests: RequestCounts {
                analyze: 5,
                ..RequestCounts::default()
            },
            cycles: CycleStats {
                incremental: 4,
                full: 1,
            },
            ..ShardStats::default()
        };
        let b = ShardStats {
            shard: 1,
            live_sessions: 1,
            stored_sessions: 1,
            queued_now: 2,
            queue_high_water: 5,
            rejected_overload: 1,
            rejected_quota: 0,
            rejected_deadline: 3,
            store: StoreStats {
                journal_appends: 4,
                sessions_recovered: 1,
                ..StoreStats::default()
            },
            requests: RequestCounts {
                analyze: 3,
                set_perf: 7,
                ..RequestCounts::default()
            },
            cycles: CycleStats {
                incremental: 2,
                full: 1,
            },
            ..ShardStats::default()
        };

        let stats = ServeStats { shards: vec![a, b] };
        let total = stats.aggregate();
        assert_eq!(total.live_sessions, 3);
        assert_eq!(total.requests.analyze, 8);
        assert_eq!(total.requests.total(), 15);
        assert_eq!(total.cycles.incremental, 6);
        assert_eq!(total.stored_sessions, 4);
        assert_eq!(total.store.journal_appends, 14);
        assert_eq!(total.store.snapshots_written, 2);
        assert_eq!(total.store.sessions_recovered, 1);
        // Rejection counters sum; queue depth sums; high water is the
        // per-shard max (the number to compare against the capacity).
        assert_eq!(total.queued_now, 3);
        assert_eq!(total.queue_high_water, 7);
        assert_eq!(total.rejected_overload, 5);
        assert_eq!(total.rejected_quota, 2);
        assert_eq!(total.rejected_deadline, 4);
        assert_eq!(stats.incremental_hit_rate(), Some(0.75));
    }
}
