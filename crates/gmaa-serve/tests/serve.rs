//! Integration tests for the serving layer's session semantics, on the
//! paper's 23 × 14 case study: hibernate/rehydrate equivalence,
//! deterministic routing, and multi-shard stats consistency.

use gmaa_serve::{Request, Response, ServeConfig, ServeError, SessionConfig, SessionManager};
use maut::{DecisionModel, Interval, Perf};

fn paper() -> DecisionModel {
    neon_reuse::paper_model().model
}

/// A quick session configuration so the full-analysis tests stay fast.
fn quick() -> SessionConfig {
    SessionConfig {
        mc_trials: 300,
        stability_resolution: 40,
        ..SessionConfig::default()
    }
}

fn create(m: &SessionManager, name: &str) {
    match m.request(Request::CreateSession {
        session: name.into(),
        model: paper(),
    }) {
        Ok(Response::Created) => {}
        other => panic!("create {name}: {other:?}"),
    }
}

fn analyze(m: &SessionManager, name: &str) -> gmaa::Analysis {
    match m.request(Request::Analyze {
        session: name.into(),
    }) {
        Ok(Response::Analysis(a)) => *a,
        other => panic!("analyze {name}: {other:?}"),
    }
}

fn set_doc_quality(m: &SessionManager, name: &str, alternative: usize, level: usize) {
    let attr = paper().find_attribute("doc_quality").expect("exists");
    match m.request(Request::SetPerf {
        session: name.into(),
        alternative,
        attr,
        perf: Perf::level(level),
    }) {
        Ok(Response::Edited) => {}
        other => panic!("edit {name}: {other:?}"),
    }
}

fn assert_analyses_agree(a: &gmaa::Analysis, b: &gmaa::Analysis) {
    assert_eq!(a.evaluation, b.evaluation);
    assert_eq!(a.non_dominated, b.non_dominated);
    assert_eq!(a.intensity, b.intensity);
    assert_eq!(a.stability, b.stability);
    assert_eq!(a.potential.len(), b.potential.len());
    for (x, y) in a.potential.iter().zip(&b.potential) {
        assert_eq!(x.potentially_optimal, y.potentially_optimal);
        assert!((x.slack - y.slack).abs() < 1e-7);
    }
    assert_eq!(a.monte_carlo.rank_counts(), b.monte_carlo.rank_counts());
}

/// The headline hibernation guarantee: a session that was LRU-evicted and
/// transparently rehydrated answers its next `Analyze` exactly like a
/// session that was never evicted — same edits, same results.
#[test]
fn rehydrated_session_analyzes_identically_to_never_evicted() {
    // Cap 1 on every shard: creating a second session on the same shard
    // evicts the first. Force same-shard placement with 1 shard.
    let evicting = SessionManager::new(ServeConfig {
        shards: 1,
        max_sessions_per_shard: 1,
        session: quick(),
        ..ServeConfig::default()
    });
    let roomy = SessionManager::new(ServeConfig {
        shards: 1,
        max_sessions_per_shard: 16,
        session: quick(),
        ..ServeConfig::default()
    });

    for m in [&evicting, &roomy] {
        create(m, "analyst");
        // Warm the session's caches, then leave a pending edit so the
        // snapshot must carry mutated state.
        analyze(m, "analyst");
        set_doc_quality(m, "analyst", 3, 3);
    }

    // Evict "analyst" (with its pending edit) by creating a neighbour.
    create(&evicting, "intruder");
    let stats = evicting.stats().aggregate();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.hibernated_sessions, 1);

    // Next request rehydrates transparently.
    let rehydrated = analyze(&evicting, "analyst");
    assert_eq!(evicting.stats().aggregate().rehydrations, 1);
    let never_evicted = analyze(&roomy, "analyst");
    assert_analyses_agree(&rehydrated, &never_evicted);

    // And the explicit snapshot round-trips through serde.
    let snap = match evicting
        .request(Request::Snapshot {
            session: "analyst".into(),
        })
        .unwrap()
    {
        Response::Snapshot(s) => *s,
        other => panic!("snapshot: {other:?}"),
    };
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    let back: gmaa_serve::SessionSnapshot =
        serde_json::from_str(&json).expect("snapshot deserializes");
    assert_eq!(back, snap);
}

/// Shard routing is a pure function of the session name: every manager
/// with the same shard count places a session on the same shard, and a
/// session created through one handle is reachable through any
/// equally-sharded manager's routing.
#[test]
fn shard_routing_is_deterministic() {
    let a = SessionManager::new(ServeConfig {
        shards: 4,
        max_sessions_per_shard: 8,
        session: quick(),
        ..ServeConfig::default()
    });
    let b = SessionManager::new(ServeConfig {
        shards: 4,
        max_sessions_per_shard: 8,
        session: quick(),
        ..ServeConfig::default()
    });
    let names: Vec<String> = (0..16).map(|i| format!("tenant-{i}")).collect();
    for name in &names {
        assert_eq!(a.shard_of(name), b.shard_of(name), "{name}");
    }
    // All four shards get traffic from 16 tenants (FNV-1a spreads).
    let mut seen = [false; 4];
    for name in &names {
        seen[a.shard_of(name)] = true;
    }
    assert!(seen.iter().all(|&s| s), "tenants concentrated: {seen:?}");

    // A session lives exactly on its computed shard: creating it and then
    // addressing it again works, while a *different* manager with a
    // different shard count may route elsewhere — the name, not the
    // manager instance, decides.
    create(&a, "tenant-3");
    assert!(matches!(
        a.request(Request::DiscardCycle {
            session: "tenant-3".into()
        }),
        Ok(Response::Cycle(_))
    ));
    let per_shard: Vec<u64> = a
        .stats()
        .shards
        .iter()
        .map(|s| s.sessions_created)
        .collect();
    assert_eq!(per_shard.iter().sum::<u64>(), 1);
    assert_eq!(per_shard[a.shard_of("tenant-3")], 1);
}

/// Multi-shard smoke test: drive a mixed workload over several tenants on
/// 4 shards (pipelined) and check that per-shard counters add up to
/// exactly the work issued.
#[test]
fn multi_shard_stats_add_up() {
    let shards = 4;
    let m = SessionManager::new(ServeConfig {
        shards,
        max_sessions_per_shard: 8,
        session: quick(),
        ..ServeConfig::default()
    });
    let tenants: Vec<String> = (0..6).map(|i| format!("tenant-{i}")).collect();
    for t in &tenants {
        create(&m, t);
    }

    let mut edits = 0u64;
    let mut cycles = 0u64;
    let mut mcs = 0u64;
    let attr = paper().find_attribute("doc_quality").expect("exists");
    // Three rounds: every tenant edits + runs the cycle, some also run a
    // Monte Carlo — submitted as a pipelined batch per round so several
    // shards are in flight at once.
    for round in 0..3 {
        let mut pending = Vec::new();
        for (i, t) in tenants.iter().enumerate() {
            pending.push(m.submit(Request::SetPerf {
                session: t.clone(),
                alternative: (round * 5 + i) % 23,
                attr,
                perf: Perf::level((round + i) % 4),
            }));
            edits += 1;
            pending.push(m.submit(Request::DiscardCycle { session: t.clone() }));
            cycles += 1;
            if (round + i) % 3 == 0 {
                pending.push(m.submit(Request::MonteCarlo {
                    session: t.clone(),
                    trials: 200,
                }));
                mcs += 1;
            }
        }
        for p in pending {
            p.wait().expect("request succeeds");
        }
    }

    let stats = m.stats();
    assert_eq!(stats.shards.len(), shards);
    let total = stats.aggregate();

    // Aggregate = hand-summed per-shard counters.
    assert_eq!(
        total.requests.total(),
        stats.shards.iter().map(|s| s.requests.total()).sum::<u64>()
    );
    assert_eq!(
        total.cycles.incremental + total.cycles.full,
        stats
            .shards
            .iter()
            .map(|s| s.cycles.incremental + s.cycles.full)
            .sum::<u64>()
    );

    // ...and exactly the work issued.
    assert_eq!(total.requests.create, tenants.len() as u64);
    assert_eq!(total.requests.set_perf, edits);
    assert_eq!(total.requests.discard_cycle, cycles);
    assert_eq!(total.requests.monte_carlo, mcs);
    assert_eq!(
        total.requests.total(),
        tenants.len() as u64 + edits + cycles + mcs
    );
    assert_eq!(total.sessions_created, tenants.len() as u64);
    assert_eq!(total.live_sessions, tenants.len());
    assert_eq!(total.evictions, 0);

    // Every tenant's first cycle is a full recompute, each subsequent
    // single-edit cycle is incremental.
    assert_eq!(total.cycles.full, tenants.len() as u64);
    assert_eq!(total.cycles.incremental, cycles - tenants.len() as u64);
    // LP work happened and was attributed.
    assert!(total.lp.solves > 0);

    // Closing everything retires the engine counters without losing them.
    for t in &tenants {
        m.request(Request::CloseSession { session: t.clone() })
            .unwrap();
    }
    let after = m.stats().aggregate();
    assert_eq!(after.live_sessions, 0);
    assert_eq!(after.cycles, total.cycles);
    assert_eq!(after.lp, total.lp);
}

/// Weight edits invalidate every pair: the next cycle is a full
/// recompute, and the serving counters say so.
#[test]
fn weight_edits_force_full_cycles() {
    let m = SessionManager::new(ServeConfig {
        shards: 1,
        max_sessions_per_shard: 4,
        session: quick(),
        ..ServeConfig::default()
    });
    create(&m, "s");
    let cycle = |m: &SessionManager| {
        matches!(
            m.request(Request::DiscardCycle {
                session: "s".into()
            }),
            Ok(Response::Cycle(_))
        )
    };
    assert!(cycle(&m));
    let objective = paper().tree.find("understandability").expect("exists");
    m.request(Request::SetWeight {
        session: "s".into(),
        objective,
        weight: Interval::new(0.1, 0.3),
    })
    .unwrap();
    assert!(cycle(&m));
    let stats = m.stats().aggregate();
    assert_eq!(stats.cycles.full, 2);
    assert_eq!(stats.cycles.incremental, 0);
}

/// Errors stay session-local: a duplicate create or a rejected edit on
/// one tenant never disturbs another tenant's state.
#[test]
fn errors_are_session_local() {
    let m = SessionManager::new(ServeConfig {
        shards: 2,
        max_sessions_per_shard: 4,
        session: quick(),
        ..ServeConfig::default()
    });
    create(&m, "a");
    create(&m, "b");
    assert!(matches!(
        m.request(Request::CreateSession {
            session: "a".into(),
            model: paper(),
        }),
        Err(ServeError::DuplicateSession(_))
    ));
    let attr = paper().find_attribute("doc_quality").expect("exists");
    assert!(matches!(
        m.request(Request::SetPerf {
            session: "a".into(),
            alternative: 0,
            attr,
            perf: Perf::level(99),
        }),
        Err(ServeError::Model(_))
    ));
    // "b" still serves.
    assert!(matches!(
        m.request(Request::DiscardCycle {
            session: "b".into()
        }),
        Ok(Response::Cycle(_))
    ));
}
