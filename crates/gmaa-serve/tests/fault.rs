//! Fault-injection tests: every `StoreError` injection point (append,
//! put_snapshot, load, sync) leaves the shard serving, shows up in
//! `StoreStats::store_errors`, and recovery from the surviving store
//! replays to bit-identical analysis results.

mod common;

use common::{model, quick};
use gmaa_serve::{
    FaultInjectingStore, MemoryStore, Request, Response, ServeConfig, ServeError, SessionManager,
    SessionStore, StoreOp,
};
use std::sync::Arc;

fn faulted_manager(
    config: ServeConfig,
) -> (SessionManager, Arc<FaultInjectingStore>, Arc<MemoryStore>) {
    let inner = Arc::new(MemoryStore::new());
    let faults = Arc::new(FaultInjectingStore::new(
        inner.clone() as Arc<dyn SessionStore>,
        42,
    ));
    let m = SessionManager::with_store(config, faults.clone()).unwrap();
    (m, faults, inner)
}

fn one_shard() -> ServeConfig {
    ServeConfig {
        shards: 1,
        session: quick(),
        ..ServeConfig::default()
    }
}

fn analysis_json(m: &SessionManager, session: &str) -> String {
    match m
        .request(Request::Analyze {
            session: session.into(),
        })
        .unwrap()
    {
        Response::Analysis(a) => serde_json::to_string(&*a).unwrap(),
        other => panic!("expected analysis, got {other:?}"),
    }
}

/// Recover a fresh manager from the inner (fault-free) store and return
/// the session's analysis JSON.
fn recovered_analysis_json(inner: &Arc<MemoryStore>, session: &str) -> String {
    let m = SessionManager::with_store(one_shard(), inner.clone()).unwrap();
    analysis_json(&m, session)
}

#[test]
fn append_failure_falls_back_to_snapshot() {
    let (m, faults, inner) = faulted_manager(one_shard());
    m.request(Request::CreateSession {
        session: "s".into(),
        model: model(),
    })
    .unwrap();
    let x = model().find_attribute("x").unwrap();

    // The journal write fails; the shard degrades to a full snapshot and
    // the edit still succeeds.
    faults.fail_next(StoreOp::Append, 1);
    assert!(matches!(
        m.request(Request::SetPerf {
            session: "s".into(),
            alternative: 0,
            attr: x,
            perf: maut::Perf::level(0),
        })
        .unwrap(),
        Response::Edited
    ));
    let stats = m.stats().aggregate();
    assert_eq!(stats.store.store_errors, 1);
    assert_eq!(stats.store.journal_appends, 0, "append never landed");
    assert!(stats.store.snapshots_written >= 2, "create + fallback");

    // The fallback snapshot captured the edit: recovery replays to the
    // exact same analysis bytes.
    let reference = analysis_json(&m, "s");
    drop(m);
    assert_eq!(recovered_analysis_json(&inner, "s"), reference);
}

#[test]
fn append_and_snapshot_both_failing_surfaces_error_but_keeps_serving() {
    let (m, faults, _inner) = faulted_manager(one_shard());
    m.request(Request::CreateSession {
        session: "s".into(),
        model: model(),
    })
    .unwrap();
    let x = model().find_attribute("x").unwrap();

    // Journal AND fallback snapshot fail: the edit reports a typed store
    // error...
    faults.fail_next(StoreOp::Append, 1);
    faults.fail_next(StoreOp::PutSnapshot, 1);
    assert!(matches!(
        m.request(Request::SetPerf {
            session: "s".into(),
            alternative: 0,
            attr: x,
            perf: maut::Perf::level(0),
        }),
        Err(ServeError::Store(_))
    ));
    assert_eq!(m.stats().aggregate().store.store_errors, 2);

    // ...and the shard keeps serving the session afterwards.
    assert!(matches!(
        m.request(Request::Analyze {
            session: "s".into()
        }),
        Ok(Response::Analysis(_))
    ));
}

#[test]
fn create_snapshot_failure_is_retryable() {
    let (m, faults, _inner) = faulted_manager(one_shard());
    faults.fail_next(StoreOp::PutSnapshot, 1);
    assert!(matches!(
        m.request(Request::CreateSession {
            session: "s".into(),
            model: model(),
        }),
        Err(ServeError::Store(_))
    ));
    assert_eq!(m.stats().aggregate().store.store_errors, 1);
    // The failed create left no half-session behind: the retry succeeds
    // (no DuplicateSession) and the session serves.
    assert!(matches!(
        m.request(Request::CreateSession {
            session: "s".into(),
            model: model(),
        })
        .unwrap(),
        Response::Created
    ));
    assert!(matches!(
        m.request(Request::Analyze {
            session: "s".into()
        }),
        Ok(Response::Analysis(_))
    ));
}

#[test]
fn load_failure_is_retryable_and_rehydrates_bit_identical() {
    let (m, faults, _inner) = faulted_manager(ServeConfig {
        max_sessions_per_shard: 1,
        ..one_shard()
    });
    m.request(Request::CreateSession {
        session: "a".into(),
        model: model(),
    })
    .unwrap();
    let reference = analysis_json(&m, "a");
    // A second tenant evicts "a" (capacity 1) to the store.
    m.request(Request::CreateSession {
        session: "b".into(),
        model: model(),
    })
    .unwrap();

    // Rehydrating "a" hits a load failure: typed error, session entry
    // intact in the store.
    faults.fail_next(StoreOp::Load, 1);
    assert!(matches!(
        m.request(Request::Analyze {
            session: "a".into()
        }),
        Err(ServeError::Store(_))
    ));
    let stats = m.stats().aggregate();
    assert_eq!(stats.store.store_errors, 1);

    // The retry rehydrates to bit-identical analysis results.
    assert_eq!(analysis_json(&m, "a"), reference);
    assert!(m.stats().aggregate().rehydrations >= 1);
}

#[test]
fn sync_failure_during_drain_reports_but_flushes_and_keeps_serving() {
    let (m, faults, inner) = faulted_manager(one_shard());
    for name in ["a", "b"] {
        m.request(Request::CreateSession {
            session: name.into(),
            model: model(),
        })
        .unwrap();
    }
    faults.fail_next(StoreOp::Sync, 1);
    assert!(matches!(m.drain(), Err(ServeError::Store(_))));
    assert_eq!(m.stats().aggregate().store.store_errors, 1);
    // The snapshots landed before the failed sync, and the shard still
    // serves: drain is a flush, not a shutdown.
    let mut names = inner.sessions().unwrap();
    names.sort();
    assert_eq!(names, vec!["a", "b"]);
    assert!(matches!(
        m.request(Request::Analyze {
            session: "a".into()
        }),
        Ok(Response::Analysis(_))
    ));
    // A clean retry succeeds.
    assert!(m.drain().is_ok());
}

#[test]
fn seeded_fault_storm_never_hangs_and_survivors_recover() {
    // A flaky-disk soak: every store call fails with probability 0.25 on
    // a fixed seed. Every request must resolve to Ok or a typed error —
    // no panic, no hang — and whatever the inner store holds afterwards
    // must recover cleanly.
    let inner = Arc::new(MemoryStore::new());
    let faults = Arc::new(
        FaultInjectingStore::new(inner.clone() as Arc<dyn SessionStore>, 42).with_fail_rate(0.25),
    );
    let m = SessionManager::with_store(one_shard(), faults.clone()).unwrap();
    let x = model().find_attribute("x").unwrap();
    for round in 0..20 {
        let session = format!("t{}", round % 4);
        let _ = m.request(Request::CreateSession {
            session: session.clone(),
            model: model(),
        });
        let _ = m.request(Request::SetPerf {
            session: session.clone(),
            alternative: 0,
            attr: x,
            perf: maut::Perf::level(round % 3),
        });
        let _ = m.request(Request::Analyze { session });
    }
    assert!(faults.injected() > 0, "the storm never struck");
    assert!(m.stats().aggregate().store.store_errors > 0);
    drop(m);

    // Recovery from the surviving store: every stored session replays
    // and analyzes.
    let recovered = SessionManager::with_store(one_shard(), inner.clone()).unwrap();
    let stored = inner.sessions().unwrap();
    assert!(!stored.is_empty(), "no session ever survived a write");
    for session in stored {
        assert!(matches!(
            recovered.request(Request::Analyze { session }),
            Ok(Response::Analysis(_))
        ));
    }
}
