//! Loopback TCP tests: protocol round trips, pipelining, malformed and
//! oversized frames, overload shedding through the wire, and drain.

mod common;

use common::{model, quick, GateStore};
use gmaa_serve::net::{Client, NetConfig, Server, WireRequest, WireResponse};
use gmaa_serve::{
    MemoryStore, Request, Response, ServeConfig, ServeError, SessionManager, SessionStore,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn serve(
    config: ServeConfig,
    store: Option<Arc<dyn SessionStore>>,
) -> (Server, Arc<SessionManager>) {
    let manager = Arc::new(match store {
        Some(store) => SessionManager::with_store(config, store).unwrap(),
        None => SessionManager::new(config),
    });
    let server = Server::bind("127.0.0.1:0", Arc::clone(&manager), NetConfig::default()).unwrap();
    (server, manager)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        session: quick(),
        ..ServeConfig::default()
    }
}

/// Raw frame I/O for the tests that deliberately speak bad protocol.
fn write_raw_frame(stream: &mut TcpStream, payload: &[u8]) {
    stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(payload).unwrap();
    stream.flush().unwrap();
}

fn read_raw_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut prefix = [0u8; 4];
    if stream.read_exact(&mut prefix).is_err() {
        return None;
    }
    let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
    stream.read_exact(&mut payload).unwrap();
    Some(payload)
}

#[test]
fn tcp_round_trip_matches_in_process_results() {
    let (server, _manager) = serve(quick_config(), None);
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert!(matches!(
        client
            .request(Request::CreateSession {
                session: "alice".into(),
                model: model(),
            })
            .unwrap(),
        Response::Created
    ));
    let x = model().find_attribute("x").unwrap();
    assert!(matches!(
        client
            .request(Request::SetPerf {
                session: "alice".into(),
                alternative: 0,
                attr: x,
                perf: maut::Perf::level(0),
            })
            .unwrap(),
        Response::Edited
    ));
    let over_tcp = match client
        .request(Request::Analyze {
            session: "alice".into(),
        })
        .unwrap()
    {
        Response::Analysis(a) => a,
        other => panic!("expected analysis, got {other:?}"),
    };

    // The same session driven in-process produces byte-identical JSON:
    // the wire round trip lost nothing.
    let reference = SessionManager::new(quick_config());
    reference
        .request(Request::CreateSession {
            session: "alice".into(),
            model: model(),
        })
        .unwrap();
    reference
        .request(Request::SetPerf {
            session: "alice".into(),
            alternative: 0,
            attr: x,
            perf: maut::Perf::level(0),
        })
        .unwrap();
    let in_process = match reference
        .request(Request::Analyze {
            session: "alice".into(),
        })
        .unwrap()
    {
        Response::Analysis(a) => a,
        other => panic!("expected analysis, got {other:?}"),
    };
    assert_eq!(
        serde_json::to_string(&*over_tcp).unwrap(),
        serde_json::to_string(&*in_process).unwrap()
    );

    // An error round-trips as a typed error, not a dropped connection.
    assert!(matches!(
        client.request(Request::Analyze {
            session: "ghost".into()
        }),
        Err(ServeError::UnknownSession(name)) if name == "ghost"
    ));
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (server, _manager) = serve(quick_config(), None);
    let mut client = Client::connect(server.local_addr()).unwrap();
    for tenant in ["a", "b", "c"] {
        client
            .request(Request::CreateSession {
                session: tenant.into(),
                model: model(),
            })
            .unwrap();
    }
    // Interleave kinds across tenants (and shards) without waiting.
    for tenant in ["a", "b", "c"] {
        client
            .send(
                Request::Analyze {
                    session: tenant.into(),
                },
                None,
            )
            .unwrap();
        client
            .send(
                Request::MonteCarlo {
                    session: tenant.into(),
                    trials: 25,
                },
                None,
            )
            .unwrap();
    }
    assert_eq!(client.in_flight(), 6);
    // Replies come back in send order: analysis, monte carlo, ×3.
    for _ in 0..3 {
        assert!(matches!(client.recv().unwrap(), Response::Analysis(_)));
        assert!(matches!(client.recv().unwrap(), Response::MonteCarlo(_)));
    }
    assert_eq!(client.in_flight(), 0);
}

#[test]
fn malformed_frame_gets_typed_error_and_connection_survives() {
    let (server, _manager) = serve(quick_config(), None);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Well-framed garbage: typed Protocol error, stream stays aligned.
    write_raw_frame(&mut stream, b"this is not json");
    let reply = read_raw_frame(&mut stream).expect("typed reply, not a hangup");
    let response: WireResponse =
        serde_json::from_str(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert!(matches!(
        response,
        WireResponse::Err(ServeError::Protocol(_))
    ));

    // Valid JSON of the wrong shape: same degradation.
    write_raw_frame(&mut stream, b"{\"NoSuchVariant\":1}");
    let reply = read_raw_frame(&mut stream).unwrap();
    let response: WireResponse =
        serde_json::from_str(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert!(matches!(
        response,
        WireResponse::Err(ServeError::Protocol(_))
    ));

    // The same connection still serves real requests.
    let request = serde_json::to_string(&WireRequest::Api {
        request: Box::new(Request::CreateSession {
            session: "s".into(),
            model: model(),
        }),
        deadline_ms: None,
    })
    .unwrap();
    write_raw_frame(&mut stream, request.as_bytes());
    let reply = read_raw_frame(&mut stream).unwrap();
    let response: WireResponse =
        serde_json::from_str(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert!(matches!(response, WireResponse::Ok(Response::Created)));
}

#[test]
fn oversized_frame_gets_typed_error_then_close() {
    let (server, _manager) = serve(quick_config(), None);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // A length prefix way past the cap, no payload behind it.
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let reply = read_raw_frame(&mut stream).expect("typed reply before close");
    let response: WireResponse =
        serde_json::from_str(std::str::from_utf8(&reply).unwrap()).unwrap();
    match response {
        WireResponse::Err(ServeError::Protocol(msg)) => {
            assert!(msg.contains("exceeds"), "unhelpful message: {msg}");
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }
    // The stream cannot be re-aligned, so the server hangs up.
    assert!(
        read_raw_frame(&mut stream).is_none(),
        "connection not closed"
    );
}

#[test]
fn overload_sheds_through_the_wire() {
    let store = Arc::new(GateStore::new());
    let (server, manager) = serve(
        ServeConfig {
            shards: 1,
            queue_capacity: 2,
            session: quick(),
            ..ServeConfig::default()
        },
        Some(store.clone() as Arc<dyn SessionStore>),
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    // The create parks the single worker inside the store write...
    client
        .send(
            Request::CreateSession {
                session: "s".into(),
                model: model(),
            },
            None,
        )
        .unwrap();
    store.wait_parked();
    // ...then three pipelined analyzes hit a capacity-2 queue: the
    // server's reader admits two and sheds the third immediately.
    for _ in 0..3 {
        client
            .send(
                Request::Analyze {
                    session: "s".into(),
                },
                None,
            )
            .unwrap();
    }
    store.open();
    assert!(matches!(client.recv().unwrap(), Response::Created));
    assert!(matches!(client.recv().unwrap(), Response::Analysis(_)));
    assert!(matches!(client.recv().unwrap(), Response::Analysis(_)));
    match client.recv() {
        Err(ServeError::Overloaded { shard, depth }) => {
            assert_eq!(shard, 0);
            assert_eq!(depth, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let total = manager.stats().aggregate();
    assert_eq!(total.rejected_overload, 1);
    assert_eq!(total.queue_high_water, 2);
}

#[test]
fn drain_flushes_sessions_and_closes_admission() {
    let store = Arc::new(MemoryStore::new());
    let (server, manager) = serve(quick_config(), Some(store.clone() as Arc<dyn SessionStore>));
    let mut client = Client::connect(server.local_addr()).unwrap();
    for tenant in ["a", "b"] {
        client
            .request(Request::CreateSession {
                session: tenant.into(),
                model: model(),
            })
            .unwrap();
    }
    assert_eq!(client.drain().unwrap(), 2);
    assert!(manager.is_shutting_down());
    // The store holds both sessions; admission is closed for everyone,
    // including a fresh connection.
    assert_eq!(store.sessions().unwrap().len(), 2);
    let mut late = Client::connect(server.local_addr()).unwrap();
    assert!(matches!(
        late.request(Request::Analyze {
            session: "a".into()
        }),
        Err(ServeError::Shutdown)
    ));
}

#[test]
fn request_with_deadline_expiry_surfaces_through_the_wire() {
    // One shard whose worker parks inside the create's snapshot write,
    // so a request queued behind it with a hopeless deadline expires at
    // dequeue and the typed error travels back over the wire.
    let store = Arc::new(GateStore::new());
    let config = ServeConfig {
        shards: 1,
        session: quick(),
        ..ServeConfig::default()
    };
    let (server, manager) = serve(config, Some(store.clone() as Arc<dyn SessionStore>));
    let mut client = Client::connect(server.local_addr()).unwrap();

    client
        .send(
            Request::CreateSession {
                session: "s".into(),
                model: model(),
            },
            None,
        )
        .unwrap();
    store.wait_parked();
    // Queued behind the parked worker; already past its 0 ms deadline.
    client
        .send(
            Request::Analyze {
                session: "s".into(),
            },
            Some(0),
        )
        .unwrap();
    store.open();

    assert!(matches!(client.recv().unwrap(), Response::Created));
    assert!(matches!(client.recv(), Err(ServeError::DeadlineExceeded)));
    // A generous deadline on an idle shard sails through the same path.
    assert!(matches!(
        client.request_with_deadline(
            Request::Analyze {
                session: "s".into()
            },
            Some(60_000),
        ),
        Ok(Response::Analysis(_))
    ));

    // Exact accounting: the expiry cost a dequeue (counted by kind) but
    // never touched the engine — only one analysis cycle ran.
    let total = manager.stats().aggregate();
    assert_eq!(total.rejected_deadline, 1);
    assert_eq!(total.requests.analyze, 2);
    assert_eq!(total.cycles.full, 1);
    // Load accounting matches: create + one served analysis reached the
    // handler; the expired request consumed no busy_ns denominator slot.
    assert_eq!(total.load.served_requests, 2);
    assert!(total.load.busy_ns > 0);
}

#[test]
fn slow_reading_client_gets_every_reply_in_order() {
    // Pins the current writer-channel contract ahead of the backpressure
    // stretch (see ROADMAP): a client that pipelines deeply without
    // reading its socket queues replies in the per-connection writer
    // channel (unbounded today). The server's reader and shard workers
    // must not stall, no reply may be dropped or reordered, and the
    // connection must stay usable afterwards.
    let (server, manager) = serve(quick_config(), None);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .request(Request::CreateSession {
            session: "s".into(),
            model: model(),
        })
        .unwrap();

    const BURST: usize = 256;
    for _ in 0..BURST {
        client
            .send(
                Request::Snapshot {
                    session: "s".into(),
                },
                None,
            )
            .unwrap();
    }
    assert_eq!(client.in_flight(), BURST);
    // Give the workers time to finish while this client reads nothing:
    // replies pile up in the socket buffer and then the writer channel.
    std::thread::sleep(std::time::Duration::from_millis(300));
    // The server must still answer other clients while the slow reader's
    // backlog sits in its writer channel.
    let mut other = Client::connect(server.local_addr()).unwrap();
    assert!(matches!(
        other.request(Request::Analyze {
            session: "s".into()
        }),
        Ok(Response::Analysis(_))
    ));

    // Now drain the backlog: every reply arrives, in send order.
    for i in 0..BURST {
        match client.recv() {
            Ok(Response::Snapshot(_)) => {}
            other => panic!("reply {i}: expected Snapshot, got {other:?}"),
        }
    }
    assert_eq!(client.in_flight(), 0);
    // The connection survives the burst.
    assert!(matches!(
        client.request(Request::Analyze {
            session: "s".into()
        }),
        Ok(Response::Analysis(_))
    ));
    let total = manager.stats().aggregate();
    assert_eq!(total.requests.snapshot, BURST as u64);
    assert_eq!(total.rejected_overload, 0);
}
