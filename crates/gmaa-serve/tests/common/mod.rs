//! Shared helpers for the gmaa-serve integration tests.

// Each integration-test binary compiles this module separately and uses
// only a subset of the helpers.
#![allow(dead_code)]

use gmaa_serve::{
    JournalRecord, MemoryStore, SessionConfig, SessionSnapshot, SessionStore, StoreError,
    StoredSession,
};
use std::sync::{Condvar, Mutex};

/// Fast analysis settings for test sessions.
pub fn quick() -> SessionConfig {
    SessionConfig {
        mc_trials: 50,
        stability_resolution: 10,
        ..SessionConfig::default()
    }
}

/// A small two-attribute model with two alternatives.
pub fn model() -> maut::DecisionModel {
    use maut::prelude::*;
    let mut b = DecisionModelBuilder::new("m");
    let x = b.discrete_attribute("x", "X", &["l", "m", "h"]);
    let y = b.discrete_attribute("y", "Y", &["l", "m", "h"]);
    b.attach_attributes_to_root(&[(x, Interval::new(0.4, 0.6)), (y, Interval::new(0.4, 0.6))]);
    b.alternative("a", vec![Perf::level(2), Perf::level(1)]);
    b.alternative("b", vec![Perf::level(0), Perf::level(2)]);
    b.build().unwrap()
}

/// A store whose `put_snapshot` parks the calling shard worker until the
/// test opens the gate — a deterministic way to hold a worker busy while
/// the test fills (or deadline-expires) its admission queue.
pub struct GateStore {
    inner: MemoryStore,
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    parked: u32,
    open: bool,
}

impl GateStore {
    pub fn new() -> GateStore {
        GateStore {
            inner: MemoryStore::new(),
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    /// Block until a shard worker is parked inside `put_snapshot`.
    pub fn wait_parked(&self) {
        let mut st = self.state.lock().unwrap();
        while st.parked == 0 {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Release every parked (and future) `put_snapshot`.
    pub fn open(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }
}

impl SessionStore for GateStore {
    fn append(&self, session: &str, record: &JournalRecord) -> Result<(), StoreError> {
        self.inner.append(session, record)
    }

    fn put_snapshot(&self, snapshot: &SessionSnapshot) -> Result<(), StoreError> {
        {
            let mut st = self.state.lock().unwrap();
            if !st.open {
                st.parked += 1;
                self.cv.notify_all();
                while !st.open {
                    st = self.cv.wait(st).unwrap();
                }
                st.parked -= 1;
            }
        }
        self.inner.put_snapshot(snapshot)
    }

    fn load(&self, session: &str) -> Result<Option<StoredSession>, StoreError> {
        self.inner.load(session)
    }

    fn remove(&self, session: &str) -> Result<(), StoreError> {
        self.inner.remove(session)
    }

    fn sessions(&self) -> Result<Vec<String>, StoreError> {
        self.inner.sessions()
    }

    fn sync(&self) -> Result<(), StoreError> {
        self.inner.sync()
    }
}
