//! Drain racing live traffic: `shutdown()` fired while N threads are
//! submitting edits against a durable [`FileStore`]. Every concurrent
//! submission must complete or be rejected with a typed error (no
//! hangs), and no edit acknowledged before the drain may be lost —
//! recovery must replay every acked edit to bit-identical analysis
//! results.

mod common;

use common::{model, quick};
use gmaa_serve::{
    FileStore, FsyncPolicy, Request, Response, ServeConfig, ServeError, SessionManager,
};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gmaa-drain-race-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn analysis_json(m: &SessionManager, session: &str) -> String {
    match m
        .request(Request::Analyze {
            session: session.into(),
        })
        .unwrap()
    {
        Response::Analysis(a) => serde_json::to_string(&*a).unwrap(),
        other => panic!("expected analysis, got {other:?}"),
    }
}

#[test]
fn shutdown_racing_submitters_loses_no_acked_edit() {
    const THREADS: usize = 6;
    let dir = temp_dir("race");
    let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
    let config = ServeConfig {
        shards: 2,
        session: quick(),
        ..ServeConfig::default()
    };
    let m = Arc::new(SessionManager::with_store(config, store.clone()).unwrap());
    let x = model().find_attribute("x").unwrap();

    for t in 0..THREADS {
        m.request(Request::CreateSession {
            session: format!("t{t}"),
            model: model(),
        })
        .unwrap();
    }

    // All submitters arm, then race the main thread's shutdown(). Each
    // keeps editing its own tenant (always the same cell, so the last
    // acked level IS the final model state) until admission closes.
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let m = Arc::clone(&m);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let session = format!("t{t}");
                let mut last_acked: Option<usize> = None;
                let mut edit = |level: usize| match m.request(Request::SetPerf {
                    session: session.clone(),
                    alternative: 0,
                    attr: x,
                    perf: maut::Perf::level(level),
                }) {
                    Ok(Response::Edited) => {
                        last_acked = Some(level);
                        true
                    }
                    Err(ServeError::Shutdown) => false,
                    other => panic!("unexpected outcome for {session}: {other:?}"),
                };
                // A guaranteed acked edit before the race begins...
                assert!(edit(t % 3), "pre-race edit cannot be refused");
                barrier.wait();
                // ...then race until the drain closes admission.
                let mut level = t;
                while edit(level % 3) {
                    level += 1;
                }
                (t, last_acked)
            })
        })
        .collect();

    barrier.wait();
    let drained = m.shutdown().expect("drain under load");
    assert_eq!(drained, THREADS as u64);

    // No hangs: every submitter observed Shutdown and exits. (A hung
    // join fails the test via the harness timeout.)
    let acked: Vec<(usize, Option<usize>)> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();

    // No lost journal records: a recovered manager must agree
    // bit-identically with a fresh manager holding exactly the last
    // acked edit of each tenant.
    drop(m);
    let recovered = SessionManager::with_store(
        ServeConfig {
            shards: 2,
            session: quick(),
            ..ServeConfig::default()
        },
        Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap()),
    )
    .unwrap();
    let reference = SessionManager::new(ServeConfig {
        shards: 2,
        session: quick(),
        ..ServeConfig::default()
    });
    for (t, last) in acked {
        let session = format!("t{t}");
        reference
            .request(Request::CreateSession {
                session: session.clone(),
                model: model(),
            })
            .unwrap();
        let level = last.expect("every tenant acked its pre-race edit");
        reference
            .request(Request::SetPerf {
                session: session.clone(),
                alternative: 0,
                attr: x,
                perf: maut::Perf::level(level),
            })
            .unwrap();
        assert_eq!(
            analysis_json(&recovered, &session),
            analysis_json(&reference, &session),
            "tenant {session}: recovered state disagrees with its acked edits"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
