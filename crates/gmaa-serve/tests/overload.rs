//! Admission-control integration tests: queue capacity, tenant quotas,
//! deadlines, and shutdown semantics, with exact-accounting assertions
//! on the rejection counters.

mod common;

use common::{model, quick, GateStore};
use gmaa_serve::{
    MemoryStore, Request, Response, ServeConfig, ServeError, SessionManager, SessionStore,
    TenantQuota,
};
use std::sync::Arc;
use std::time::Duration;

fn gated_manager(queue_capacity: usize) -> (SessionManager, Arc<GateStore>) {
    let store = Arc::new(GateStore::new());
    let m = SessionManager::with_store(
        ServeConfig {
            shards: 1,
            queue_capacity,
            session: quick(),
            ..ServeConfig::default()
        },
        store.clone(),
    )
    .unwrap();
    (m, store)
}

#[test]
fn full_queue_sheds_with_typed_overload() {
    let (m, store) = gated_manager(2);
    // The create is dequeued (freeing its queue slot) and then parks the
    // worker inside the store write; the queue behind it is now ours.
    let create = m.submit(Request::CreateSession {
        session: "s".into(),
        model: model(),
    });
    store.wait_parked();

    let q1 = m.submit(Request::Analyze {
        session: "s".into(),
    });
    let q2 = m.submit(Request::Analyze {
        session: "s".into(),
    });
    // Queue depth is now exactly the capacity: the next submit must shed,
    // resolving immediately (the worker is still parked).
    let shed = m.submit(Request::Analyze {
        session: "s".into(),
    });
    match shed.wait() {
        Err(ServeError::Overloaded { shard, depth }) => {
            assert_eq!(shard, 0);
            assert_eq!(depth, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    store.open();
    assert!(matches!(create.wait(), Ok(Response::Created)));
    assert!(matches!(q1.wait(), Ok(Response::Analysis(_))));
    assert!(matches!(q2.wait(), Ok(Response::Analysis(_))));

    // Exact accounting: one shed, high water at (never past) capacity,
    // nothing queued any more, and the shed request never reached the
    // worker's per-kind counters.
    let stats = m.stats();
    let total = stats.aggregate();
    assert_eq!(total.rejected_overload, 1);
    assert_eq!(total.queue_high_water, 2);
    assert_eq!(total.queued_now, 0);
    assert_eq!(total.rejected_quota, 0);
    assert_eq!(total.rejected_deadline, 0);
    assert_eq!(total.requests.create, 1);
    assert_eq!(total.requests.analyze, 2);
    assert_eq!(total.requests.total(), 3);
}

#[test]
fn tenant_quota_rejects_at_admission() {
    let m = SessionManager::new(ServeConfig {
        shards: 1,
        quota: Some(TenantQuota {
            rate_per_sec: 0.001, // effectively no refill within the test
            burst: 2.0,
        }),
        session: quick(),
        ..ServeConfig::default()
    });
    // Tokens 1 and 2 for tenant "s".
    m.request(Request::CreateSession {
        session: "s".into(),
        model: model(),
    })
    .unwrap();
    assert!(matches!(
        m.request(Request::Analyze {
            session: "s".into()
        }),
        Ok(Response::Analysis(_))
    ));
    // Token 3 does not exist.
    match m.request(Request::Analyze {
        session: "s".into(),
    }) {
        Err(ServeError::QuotaExceeded { session }) => assert_eq!(session, "s"),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // Another tenant has its own bucket and is unaffected.
    m.request(Request::CreateSession {
        session: "t".into(),
        model: model(),
    })
    .unwrap();

    // Exact accounting: the rejected request consumed no queue slot and
    // no per-kind counter; the three admitted ones did.
    let total = m.stats().aggregate();
    assert_eq!(total.rejected_quota, 1);
    assert_eq!(total.rejected_overload, 0);
    assert_eq!(total.requests.create, 2);
    assert_eq!(total.requests.analyze, 1);
    assert_eq!(total.requests.total(), 3);
}

#[test]
fn queued_past_deadline_is_rejected_without_engine_work() {
    let (m, store) = gated_manager(8);
    let create = m.submit(Request::CreateSession {
        session: "s".into(),
        model: model(),
    });
    store.wait_parked();

    // Queued behind the parked worker with an already-hopeless deadline.
    let doomed = m.submit_with_deadline(
        Request::Analyze {
            session: "s".into(),
        },
        Some(Duration::ZERO),
    );
    // And one with no deadline, which must still be served.
    let fine = m.submit_with_deadline(
        Request::Analyze {
            session: "s".into(),
        },
        None,
    );
    store.open();
    assert!(matches!(create.wait(), Ok(Response::Created)));
    assert!(matches!(doomed.wait(), Err(ServeError::DeadlineExceeded)));
    assert!(matches!(fine.wait(), Ok(Response::Analysis(_))));

    let total = m.stats().aggregate();
    assert_eq!(total.rejected_deadline, 1);
    // The expiry cost a dequeue, so it *is* counted by kind — but only
    // one analysis actually ran.
    assert_eq!(total.requests.analyze, 2);
    assert_eq!(total.cycles.full, 1);
}

#[test]
fn dropped_manager_resolves_outstanding_pending_with_shutdown() {
    // Regression: a worker that exits while pipelined requests are still
    // queued must answer them with the typed Shutdown error, not leave
    // Pending::wait to report a bare recv failure as ShardDown.
    let m = SessionManager::new(ServeConfig {
        shards: 1,
        session: quick(),
        ..ServeConfig::default()
    });
    m.request(Request::CreateSession {
        session: "s".into(),
        model: model(),
    })
    .unwrap();
    // A long request to occupy the worker, then a pipeline behind it.
    let pendings: Vec<_> = (0..4)
        .map(|_| {
            m.submit(Request::MonteCarlo {
                session: "s".into(),
                trials: 500_000,
            })
        })
        .collect();
    drop(m);
    let outcomes: Vec<_> = pendings.into_iter().map(|p| p.wait()).collect();
    // Every pending resolves — to a result or to the typed shutdown
    // error, never to ShardDown.
    for o in &outcomes {
        assert!(
            matches!(o, Ok(Response::MonteCarlo(_)) | Err(ServeError::Shutdown)),
            "unexpected outcome {o:?}"
        );
    }
    // The drop happened microseconds into the first (hundred-ms-scale)
    // simulation, so the tail of the pipeline was still queued and must
    // have been answered with Shutdown.
    assert!(
        matches!(outcomes.last(), Some(Err(ServeError::Shutdown))),
        "expected the last queued request to observe Shutdown, got {:?}",
        outcomes.last()
    );
}

#[test]
fn shutdown_closes_admission_and_drains_sessions() {
    let store = Arc::new(MemoryStore::new());
    let m = SessionManager::with_store(
        ServeConfig {
            shards: 2,
            session: quick(),
            ..ServeConfig::default()
        },
        store.clone(),
    )
    .unwrap();
    for name in ["a", "b", "c"] {
        m.request(Request::CreateSession {
            session: name.into(),
            model: model(),
        })
        .unwrap();
    }
    assert!(!m.is_shutting_down());
    assert_eq!(m.shutdown().unwrap(), 3);
    assert!(m.is_shutting_down());
    // Admission is closed: every later submit resolves to Shutdown.
    assert!(matches!(
        m.request(Request::Analyze {
            session: "a".into()
        }),
        Err(ServeError::Shutdown)
    ));
    // The drain flushed every session durably.
    let mut names = store.sessions().unwrap();
    names.sort();
    assert_eq!(names, vec!["a", "b", "c"]);
}
