//! Heterogeneous multi-tenant serving: three distinct tenant scenario
//! types — generator-built whales and minnows (`gmaa-gen`), the paper's
//! `neon-reuse` ontology-reuse pipeline, and an `ontolib`-driven
//! ontology-assessment workload — through one `SessionManager`, with
//! exact stats accounting across the skewed request mix.
//!
//! This is the test-sized twin of the `serving_hetero` benchmark section
//! (`crates/bench/src/bin/collect_numbers.rs`); the workload shapes
//! match, only the model sizes and round counts are shrunk.

mod common;

use common::quick;
use gmaa_gen::{generate, Family, GenConfig};
use gmaa_serve::{Request, Response, ServeConfig, SessionManager};
use maut::{AttributeId, Perf};

/// The five tenants: one generated whale, two generated minnows, the
/// paper's 23×14 reuse study, and a synthetic ontology-assessment corpus.
fn tenants() -> Vec<(&'static str, maut::DecisionModel)> {
    vec![
        (
            "whale",
            generate(&GenConfig::preset(Family::Mixed, 120, 12, 31)),
        ),
        (
            "minnow-flat",
            generate(&GenConfig::preset(Family::Flat, 12, 6, 32)),
        ),
        (
            "minnow-degenerate",
            generate(&GenConfig::preset(Family::NearDegenerate, 10, 6, 33)),
        ),
        ("neon-reuse", neon_reuse::paper_model().model),
        (
            "ontolib-assess",
            neon_reuse::corpus::assessment_model(8, 34),
        ),
    ]
}

#[test]
fn heterogeneous_tenants_share_one_manager_with_exact_accounting() {
    let manager = SessionManager::new(ServeConfig {
        shards: 4,
        session: quick(),
        ..ServeConfig::default()
    });

    let tenants = tenants();
    let mut issued_create = 0u64;
    let mut issued_set_perf = 0u64;
    let mut issued_analyze = 0u64;
    let mut issued_cycle = 0u64;
    let mut issued_mc = 0u64;
    let mut issued_snapshot = 0u64;

    for (name, model) in &tenants {
        assert!(matches!(
            manager.request(Request::CreateSession {
                session: (*name).into(),
                model: model.clone(),
            }),
            Ok(Response::Created)
        ));
        issued_create += 1;
    }

    // Skewed mix: the whale takes edit→cycle rounds plus a Monte Carlo
    // run; the reuse tenants take lighter edit→cycle rounds; the minnows
    // only analyze and snapshot.
    for round in 0..4 {
        manager
            .request(Request::SetPerf {
                session: "whale".into(),
                alternative: round * 7 % 120,
                // Attributes 0 and 1 are discrete in the Mixed family
                // (every third attribute is continuous).
                attr: AttributeId::from_index(round % 2),
                perf: Perf::level(round % 3),
            })
            .unwrap();
        issued_set_perf += 1;
        assert!(matches!(
            manager.request(Request::DiscardCycle {
                session: "whale".into(),
            }),
            Ok(Response::Cycle(_))
        ));
        issued_cycle += 1;
    }
    assert!(matches!(
        manager.request(Request::MonteCarlo {
            session: "whale".into(),
            trials: 200,
        }),
        Ok(Response::MonteCarlo(_))
    ));
    issued_mc += 1;

    for tenant in ["neon-reuse", "ontolib-assess"] {
        for round in 0..2 {
            manager
                .request(Request::SetPerf {
                    session: tenant.into(),
                    alternative: round,
                    attr: AttributeId::from_index(0),
                    perf: Perf::level(round % 4),
                })
                .unwrap();
            issued_set_perf += 1;
            assert!(matches!(
                manager.request(Request::DiscardCycle {
                    session: tenant.into(),
                }),
                Ok(Response::Cycle(_))
            ));
            issued_cycle += 1;
        }
        assert!(matches!(
            manager.request(Request::Analyze {
                session: tenant.into(),
            }),
            Ok(Response::Analysis(_))
        ));
        issued_analyze += 1;
    }

    for tenant in ["minnow-flat", "minnow-degenerate"] {
        for _ in 0..3 {
            assert!(matches!(
                manager.request(Request::Analyze {
                    session: tenant.into(),
                }),
                Ok(Response::Analysis(_))
            ));
            issued_analyze += 1;
        }
        assert!(matches!(
            manager.request(Request::Snapshot {
                session: tenant.into(),
            }),
            Ok(Response::Snapshot(_))
        ));
        issued_snapshot += 1;
    }

    // Exact accounting: every issued request — and nothing else — shows
    // up in the aggregate, by kind.
    let stats = manager.stats();
    let total = stats.aggregate();
    assert_eq!(total.requests.create, issued_create);
    assert_eq!(total.requests.set_perf, issued_set_perf);
    assert_eq!(total.requests.analyze, issued_analyze);
    assert_eq!(total.requests.discard_cycle, issued_cycle);
    assert_eq!(total.requests.monte_carlo, issued_mc);
    assert_eq!(total.requests.snapshot, issued_snapshot);
    assert_eq!(total.requests.close, 0);
    assert_eq!(
        total.requests.total(),
        issued_create
            + issued_set_perf
            + issued_analyze
            + issued_cycle
            + issued_mc
            + issued_snapshot
    );
    // No rejections in this closed-loop run, so every request reached
    // the handler and is accounted in the load denominator.
    assert_eq!(total.rejected_overload, 0);
    assert_eq!(total.rejected_deadline, 0);
    assert_eq!(total.load.served_requests, total.requests.total());
    assert!(total.load.busy_ns > 0);

    // Edit→cycle rounds after the first ran incrementally.
    assert!(total.cycles.incremental > 0);
    assert!(stats.incremental_hit_rate().unwrap() > 0.0);

    // The whale dominates service time: its shard's busy_ns is the
    // maximum even though the request mix is spread across all shards.
    let whale_shard = manager.shard_of("whale");
    let busiest = stats
        .shards
        .iter()
        .max_by_key(|s| s.load.busy_ns)
        .expect("at least one shard");
    assert_eq!(
        busiest.shard,
        whale_shard,
        "whale shard {} should dominate busy_ns, got shard {} (per-shard: {:?})",
        whale_shard,
        busiest.shard,
        stats
            .shards
            .iter()
            .map(|s| (s.shard, s.load.busy_ns))
            .collect::<Vec<_>>()
    );
    // Per-shard mean service time is defined wherever work ran.
    for shard in &stats.shards {
        if shard.load.served_requests > 0 {
            assert!(shard.load.mean_service_ns().is_some());
        }
    }

    manager.shutdown().expect("clean drain");
}
