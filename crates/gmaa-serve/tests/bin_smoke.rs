//! End-to-end smoke test of the `gmaa-serve` binary: spawn the compiled
//! server on an ephemeral loopback port with a durable store, drive
//! create → edit → analyze → drain over the wire, and require a clean
//! exit with the session flushed to disk.

mod common;

use common::model;
use gmaa_serve::net::Client;
use gmaa_serve::{Request, Response};
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

#[test]
fn binary_serves_over_tcp_and_exits_on_drain() {
    let dir = std::env::temp_dir().join(format!("gmaa-bin-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut child = Command::new(env!("CARGO_BIN_EXE_gmaa-serve"))
        .args(["--addr", "127.0.0.1:0", "--shards", "2"])
        .arg("--store")
        .arg(&dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary spawns");

    // The banner names the bound (ephemeral) address:
    // "gmaa-serve listening on 127.0.0.1:PORT (...)".
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().expect("banner line").expect("banner reads");
    let addr = banner
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    let mut client = Client::connect(addr.as_str()).expect("connect to binary");
    assert!(matches!(
        client
            .request(Request::CreateSession {
                session: "smoke".into(),
                model: model(),
            })
            .expect("create over the wire"),
        Response::Created
    ));
    let x = model().find_attribute("x").expect("attr exists");
    assert!(matches!(
        client
            .request(Request::SetPerf {
                session: "smoke".into(),
                alternative: 0,
                attr: x,
                perf: maut::Perf::level(0),
            })
            .expect("edit over the wire"),
        Response::Edited
    ));
    assert!(matches!(
        client
            .request(Request::Analyze {
                session: "smoke".into(),
            })
            .expect("analyze over the wire"),
        Response::Analysis(_)
    ));

    // Drain: the session flushes to the store and the process exits 0.
    assert_eq!(client.drain().expect("drain ack"), 1);
    let status = child.wait().expect("binary exits");
    assert!(status.success(), "binary exited with {status}");
    assert!(
        std::fs::read_dir(&dir)
            .expect("store dir exists")
            .next()
            .is_some(),
        "drain left the store empty"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
