//! Crash-recovery equivalence for the durable session store, on the
//! paper's 23 × 14 case study: random edit histories journaled to a
//! [`FileStore`], the process "killed" (manager dropped without drain,
//! journals possibly torn mid-record), and a recovered manager must
//! produce analysis results **bit-identical** to a manager that never
//! crashed — plus adversarial f64 JSON round-trips locking down the
//! shortest-round-trip encoding the journal depends on.

use gmaa_serve::{
    FileStore, FsyncPolicy, JournalRecord, Request, Response, ServeConfig, SessionConfig,
    SessionManager, SessionStore,
};
use maut::{DecisionModel, Interval, Perf};
use std::path::PathBuf;
use std::sync::Arc;

fn paper() -> DecisionModel {
    neon_reuse::paper_model().model
}

fn quick() -> SessionConfig {
    SessionConfig {
        mc_trials: 300,
        stability_resolution: 40,
        ..SessionConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gmaa-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn create(m: &SessionManager, name: &str) {
    match m.request(Request::CreateSession {
        session: name.into(),
        model: paper(),
    }) {
        Ok(Response::Created) => {}
        other => panic!("create {name}: {other:?}"),
    }
}

fn analyze(m: &SessionManager, name: &str) -> gmaa::Analysis {
    match m.request(Request::Analyze {
        session: name.into(),
    }) {
        Ok(Response::Analysis(a)) => *a,
        other => panic!("analyze {name}: {other:?}"),
    }
}

/// Bit-exact comparison: both sides run their first (full) cycle from
/// what must be identical model state, so even the LP slack values have
/// to match to the last bit — no epsilons anywhere.
fn assert_bit_identical(a: &gmaa::Analysis, b: &gmaa::Analysis) {
    assert_eq!(a.evaluation, b.evaluation);
    assert_eq!(a.non_dominated, b.non_dominated);
    assert_eq!(a.intensity, b.intensity);
    assert_eq!(a.stability, b.stability);
    assert_eq!(a.potential.len(), b.potential.len());
    for (x, y) in a.potential.iter().zip(&b.potential) {
        assert_eq!(x.potentially_optimal, y.potentially_optimal);
        assert_eq!(x.slack.to_bits(), y.slack.to_bits(), "slack bits differ");
    }
    assert_eq!(a.monte_carlo.rank_counts(), b.monte_carlo.rank_counts());
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A deterministic pseudo-random edit history for one session: mostly
/// performance edits across several discrete attributes, with weight
/// edits (leaf and upper-level objectives) mixed in. Candidates are
/// pre-validated against a scratch engine so every generated edit is
/// accepted — random intervals can otherwise make the weight system
/// infeasible, which both the crashed and the reference manager would
/// reject identically but the test wants *applied* state to compare.
fn edit_history(seed: u64, count: usize, session: &str) -> Vec<Request> {
    let model = paper();
    let attrs = ["doc_quality", "code_clarity", "naming_conv", "imp_language"];
    let objectives = ["understandability", "doc_quality", "code_clarity"];
    let mut scratch = gmaa::AnalysisEngine::new(paper()).expect("valid model");
    let mut rng = seed;
    let mut edits = Vec::with_capacity(count);
    let mut attempts = 0;
    while edits.len() < count && attempts < count * 20 {
        attempts += 1;
        if (edits.len() % 4 == 3) && attempts % 2 == 1 {
            let key = objectives[(lcg(&mut rng) as usize) % objectives.len()];
            let lo = 0.05 + (lcg(&mut rng) % 30) as f64 * 0.01;
            let hi = lo + 0.05 + (lcg(&mut rng) % 20) as f64 * 0.01;
            let objective = model.tree.find(key).expect("objective exists");
            let weight = Interval::new(lo, hi);
            if scratch.set_weight(objective, weight).is_ok() {
                edits.push(Request::SetWeight {
                    session: session.into(),
                    objective,
                    weight,
                });
            }
        } else {
            let key = attrs[(lcg(&mut rng) as usize) % attrs.len()];
            let alternative = (lcg(&mut rng) as usize) % 23;
            let attr = model.find_attribute(key).expect("attribute exists");
            let perf = Perf::level((lcg(&mut rng) as usize) % 4);
            if scratch.set_perf(alternative, attr, perf).is_ok() {
                edits.push(Request::SetPerf {
                    session: session.into(),
                    alternative,
                    attr,
                    perf,
                });
            }
        }
    }
    assert_eq!(edits.len(), count, "could not generate a feasible history");
    edits
}

/// The tentpole guarantee: kill a store-backed manager mid-flight (no
/// drain — snapshots are stale, journals carry the tail of every edit
/// history) and a recovered manager serves every tenant bit-identically
/// to one that never crashed. Random edit histories over several seeds;
/// the small per-shard cap forces eviction/compaction traffic mid-history
/// so recovery exercises snapshot-only, journal-over-snapshot, and
/// mixed states.
#[test]
fn crash_recovery_replays_random_edit_histories_bit_exactly() {
    for seed in [11u64, 42] {
        let dir = temp_dir(&format!("crash-{seed}"));
        let tenants: Vec<String> = (0..4).map(|i| format!("tenant-{i}")).collect();
        let config = ServeConfig {
            shards: 2,
            max_sessions_per_shard: 2,
            session: quick(),
            ..ServeConfig::default()
        };
        let reference = SessionManager::new(ServeConfig {
            max_sessions_per_shard: 16,
            ..config
        });

        {
            let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
            let crashing = SessionManager::with_store(config, store).unwrap();
            for (i, t) in tenants.iter().enumerate() {
                create(&crashing, t);
                create(&reference, t);
                for edit in edit_history(seed ^ (i as u64) << 8, 9 + i, t) {
                    crashing.request(edit.clone()).expect("edit applies");
                    reference.request(edit).expect("edit applies");
                }
            }
        } // crash: dropped with journals unflushed to snapshots

        let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
        let recovered = SessionManager::with_store(config, store).unwrap();
        for t in &tenants {
            assert_bit_identical(&analyze(&recovered, t), &analyze(&reference, t));
        }
        let stats = recovered.stats().aggregate();
        assert_eq!(stats.store.sessions_recovered, tenants.len() as u64);
        assert!(
            stats.store.records_replayed > 0,
            "no journal records survived the crash — the test lost its point"
        );
        assert_eq!(stats.store.torn_records_dropped, 0);
        assert_eq!(stats.store.store_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill mid-journal-append: the trailing record is torn in half. Recovery
/// must drop exactly that edit (and count it) and otherwise serve
/// bit-identically to a manager that never saw the torn edit.
#[test]
fn kill_mid_journal_drops_only_the_torn_edit() {
    let dir = temp_dir("torn");
    let edits = edit_history(7, 6, "analyst");

    {
        let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
        let crashing = SessionManager::with_store(
            ServeConfig {
                shards: 1,
                max_sessions_per_shard: 8,
                session: quick(),
                ..ServeConfig::default()
            },
            store,
        )
        .unwrap();
        create(&crashing, "analyst");
        for edit in &edits {
            crashing.request(edit.clone()).expect("edit applies");
        }
    }

    // Tear the final journal record mid-bytes, as a crash mid-append
    // would.
    let journal = dir.join("analyst.journal");
    let bytes = std::fs::read(&journal).expect("journal exists");
    std::fs::write(&journal, &bytes[..bytes.len() - 7]).unwrap();

    // The reference never saw the torn (last) edit.
    let reference = SessionManager::new(ServeConfig {
        shards: 1,
        max_sessions_per_shard: 8,
        session: quick(),
        ..ServeConfig::default()
    });
    create(&reference, "analyst");
    for edit in &edits[..edits.len() - 1] {
        reference.request(edit.clone()).expect("edit applies");
    }

    let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
    let recovered = SessionManager::with_store(
        ServeConfig {
            shards: 1,
            max_sessions_per_shard: 8,
            session: quick(),
            ..ServeConfig::default()
        },
        store,
    )
    .unwrap();
    assert_bit_identical(
        &analyze(&recovered, "analyst"),
        &analyze(&reference, "analyst"),
    );
    let stats = recovered.stats().aggregate();
    assert_eq!(stats.store.torn_records_dropped, 1);
    assert_eq!(stats.store.records_replayed, edits.len() as u64 - 1);
    assert_eq!(stats.store.sessions_recovered, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Unframed garbage appended to a journal (a torn length prefix) is
/// dropped like a torn record: every complete edit before it replays.
#[test]
fn garbage_journal_tail_is_dropped_like_a_torn_record() {
    let dir = temp_dir("garbage");
    let edits = edit_history(23, 5, "analyst");

    {
        let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
        let crashing = SessionManager::with_store(
            ServeConfig {
                shards: 1,
                max_sessions_per_shard: 8,
                session: quick(),
                ..ServeConfig::default()
            },
            store,
        )
        .unwrap();
        create(&crashing, "analyst");
        for edit in &edits {
            crashing.request(edit.clone()).expect("edit applies");
        }
    }
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("analyst.journal"))
            .unwrap();
        f.write_all(b"9999 {\"SetPerf\": [").unwrap();
    }

    let reference = SessionManager::new(ServeConfig {
        shards: 1,
        max_sessions_per_shard: 8,
        session: quick(),
        ..ServeConfig::default()
    });
    create(&reference, "analyst");
    for edit in &edits {
        reference.request(edit.clone()).expect("edit applies");
    }

    let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
    let recovered = SessionManager::with_store(
        ServeConfig {
            shards: 1,
            max_sessions_per_shard: 8,
            session: quick(),
            ..ServeConfig::default()
        },
        store,
    )
    .unwrap();
    assert_bit_identical(
        &analyze(&recovered, "analyst"),
        &analyze(&reference, "analyst"),
    );
    let stats = recovered.stats().aggregate();
    assert_eq!(stats.store.torn_records_dropped, 1);
    assert_eq!(stats.store.records_replayed, edits.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful shutdown: `drain` compacts every live session into its
/// snapshot, so recovery replays zero journal records yet reproduces the
/// exact state.
#[test]
fn drain_then_recover_replays_nothing_and_loses_nothing() {
    let dir = temp_dir("drain");
    let tenants: Vec<String> = (0..3).map(|i| format!("tenant-{i}")).collect();
    let config = ServeConfig {
        shards: 2,
        max_sessions_per_shard: 8,
        session: quick(),
        ..ServeConfig::default()
    };
    let reference = SessionManager::new(config);

    {
        let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
        let m = SessionManager::with_store(config, store).unwrap();
        for (i, t) in tenants.iter().enumerate() {
            create(&m, t);
            create(&reference, t);
            for edit in edit_history(100 + i as u64, 6, t) {
                m.request(edit.clone()).expect("edit applies");
                reference.request(edit).expect("edit applies");
            }
        }
        assert_eq!(m.drain().unwrap(), tenants.len() as u64);
    }

    let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
    let recovered = SessionManager::with_store(config, store).unwrap();
    for t in &tenants {
        assert_bit_identical(&analyze(&recovered, t), &analyze(&reference, t));
    }
    let stats = recovered.stats().aggregate();
    assert_eq!(
        stats.store.records_replayed, 0,
        "drain left journal records behind"
    );
    assert_eq!(stats.store.sessions_recovered, tenants.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A recovered manager rejects re-creating a recovered (not yet touched)
/// session name, and closing one removes its store state.
#[test]
fn recovered_names_are_reserved_until_closed() {
    let dir = temp_dir("reserved");
    {
        let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
        let m = SessionManager::with_store(
            ServeConfig {
                shards: 1,
                max_sessions_per_shard: 8,
                session: quick(),
                ..ServeConfig::default()
            },
            store,
        )
        .unwrap();
        create(&m, "analyst");
    }
    let store = Arc::new(FileStore::open(&dir, FsyncPolicy::Never).unwrap());
    let m = SessionManager::with_store(
        ServeConfig {
            shards: 1,
            max_sessions_per_shard: 8,
            session: quick(),
            ..ServeConfig::default()
        },
        store.clone(),
    )
    .unwrap();
    assert!(matches!(
        m.request(Request::CreateSession {
            session: "analyst".into(),
            model: paper(),
        }),
        Err(gmaa_serve::ServeError::DuplicateSession(_))
    ));
    assert!(matches!(
        m.request(Request::CloseSession {
            session: "analyst".into(),
        }),
        Ok(Response::Closed)
    ));
    assert!(store.sessions().unwrap().is_empty());
    // Now the name is free again.
    create(&m, "analyst");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Adversarial f64 values through the JSON layer the journal and the
/// snapshots ride on: the vendored `serde_json` prints floats via Rust's
/// shortest-round-trip formatting, which this test pins down bit-for-bit
/// for signed zero, subnormals, and values near the underflow boundary.
#[test]
// The subnormal-boundary literals are written with their full 17 digits
// on purpose — the extra digits are the point of the test.
#[allow(clippy::excessive_precision)]
fn adversarial_f64_values_roundtrip_bit_exactly() {
    let nasty: Vec<f64> = vec![
        0.0,
        -0.0,
        5e-324, // smallest positive subnormal
        -5e-324,
        2.2250738585072011e-308, // largest subnormal
        2.2250738585072014e-308, // smallest normal
        1e-300,
        -1e-300,
        0.1 + 0.2, // 0.30000000000000004
        1.0 / 3.0,
        f64::MAX,
        f64::MIN_POSITIVE,
        -1e308,
    ];
    let json = serde_json::to_string(&nasty).expect("serializes");
    let back: Vec<f64> = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.len(), nasty.len());
    for (a, b) in nasty.iter().zip(&back) {
        assert_eq!(a.to_bits(), b.to_bits(), "{a:e} lost bits through JSON");
    }
    // Signed zero really is preserved on the wire, not just by accident
    // of comparison (-0.0 == 0.0 under PartialEq).
    assert!(json.contains("-0"), "negative zero collapsed: {json}");

    // The same values inside journal records.
    let model = paper();
    let funct = model.find_attribute("funct_requir").expect("exists");
    let understandability = model.tree.find("understandability").expect("exists");
    for value in [-0.0, 5e-324, 2.2250738585072011e-308, 0.1 + 0.2] {
        let record = JournalRecord::SetPerf(3, funct, Perf::Value(value));
        let json = serde_json::to_string(&record).expect("serializes");
        match serde_json::from_str(&json).expect("parses") {
            JournalRecord::SetPerf(3, a, Perf::Value(v)) if a == funct => {
                assert_eq!(v.to_bits(), value.to_bits(), "{value:e} via {json}");
            }
            other => panic!("record mutated: {other:?}"),
        }
    }
    let record = JournalRecord::SetWeight(understandability, Interval::new(1e-300, 0.1 + 0.2));
    let json = serde_json::to_string(&record).expect("serializes");
    let back: JournalRecord = serde_json::from_str(&json).expect("parses");
    assert_eq!(back, record);

    // And through the full model snapshot encoding: a decode/encode
    // round trip must be a fixed point even with adversarial values in
    // the performance table.
    let mut engine = gmaa::AnalysisEngine::new(paper()).expect("valid model");
    engine
        .set_perf(5, funct, Perf::Value(5e-324))
        .expect("in range");
    let json1 = gmaa::model_to_json(engine.model()).expect("encodes");
    let decoded = gmaa::model_from_json(&json1).expect("decodes");
    assert_eq!(&decoded, engine.model());
    let json2 = gmaa::model_to_json(&decoded).expect("re-encodes");
    assert_eq!(json1, json2, "model JSON is not a round-trip fixed point");
}
