//! Property-based tests for the ontology substrate: Turtle round trips over
//! generated graphs and arbitrary literals, plus tokenizer invariants.

use ontolib::model::{Graph, Literal, Term};
use ontolib::naming::tokenize;
use ontolib::{parse_turtle, write_turtle, GeneratorConfig, OntologyGenerator};
use proptest::prelude::*;

/// Strategy for literal strings exercising the escape paths.
fn literal_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~äöüé\\n\\t\"\\\\]{0,40}").expect("valid regex")
}

fn sorted_triples(g: &Graph) -> Vec<ontolib::Triple> {
    let mut v = g.triples().to_vec();
    v.sort();
    v
}

proptest! {
    /// Any generated ontology graph round-trips through Turtle.
    #[test]
    fn generated_graphs_roundtrip(
        seed in 0u64..200,
        n_classes in 1usize..40,
        label_prob in 0.0f64..1.0,
        opaque in 0.0f64..1.0,
    ) {
        let g = OntologyGenerator::new(GeneratorConfig {
            seed,
            num_classes: n_classes,
            label_prob,
            opaque_prob: opaque,
            ..GeneratorConfig::default()
        })
        .generate_graph();
        let text = write_turtle(&g);
        let back = parse_turtle(&text).expect("round trip parses");
        prop_assert_eq!(sorted_triples(&g), sorted_triples(&back));
    }

    /// Arbitrary literal content survives serialization (escaping is
    /// lossless).
    #[test]
    fn literal_roundtrip(s in literal_string(), lang in proptest::option::of("[a-z]{2}")) {
        let mut g = Graph::new();
        g.prefixes.insert("ex", "http://e/");
        let lit = match lang {
            Some(l) => Literal::lang_tagged(s.clone(), l),
            None => Literal::plain(s.clone()),
        };
        g.add(Term::iri("http://e/s"), "http://e/p", Term::Literal(lit));
        let text = write_turtle(&g);
        let back = parse_turtle(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(sorted_triples(&g), sorted_triples(&back));
    }

    /// Tokenization never produces empty tokens and is idempotent under
    /// re-joining for snake_case inputs.
    #[test]
    fn tokenize_no_empty_tokens(name in "[A-Za-z0-9_\\-\\.]{0,30}") {
        let toks = tokenize(&name);
        prop_assert!(toks.iter().all(|t| !t.is_empty()));
        prop_assert!(toks.iter().all(|t| t.chars().all(|c| c.is_lowercase() || c.is_numeric())));
    }

    /// Merging a graph into itself never grows it (dedup is sound).
    #[test]
    fn self_merge_is_idempotent(seed in 0u64..100) {
        let g = OntologyGenerator::new(GeneratorConfig {
            seed,
            num_classes: 10,
            ..GeneratorConfig::default()
        })
        .generate_graph();
        let mut merged = g.clone();
        merged.merge(&g);
        prop_assert_eq!(merged.len(), g.len());
    }

    /// Parsing is deterministic: same text, same triples.
    #[test]
    fn parse_deterministic(seed in 0u64..100) {
        let g = OntologyGenerator::new(GeneratorConfig {
            seed,
            num_classes: 8,
            ..GeneratorConfig::default()
        })
        .generate_graph();
        let text = write_turtle(&g);
        let a = parse_turtle(&text).expect("parses");
        let b = parse_turtle(&text).expect("parses");
        prop_assert_eq!(a.triples(), b.triples());
    }
}

proptest! {
    /// The Turtle parser is total: arbitrary input returns Ok or Err but
    /// never panics, loops, or overflows.
    #[test]
    fn parser_never_panics(input in "[ -~\\n\\t]{0,200}") {
        let _ = parse_turtle(&input);
    }

    /// N-Triples parsing is total as well.
    #[test]
    fn ntriples_parser_never_panics(input in "[ -~\\n]{0,200}") {
        let _ = ontolib::parse_ntriples(&input);
    }
}
