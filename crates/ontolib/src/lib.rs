//! # ontolib
//!
//! Ontology substrate for the GMAA / NeOn ontology-reuse reproduction.
//!
//! The paper ranks *candidate ontologies*; their scores on criteria such as
//! *code clarity*, *documentation quality*, *naming conventions* and *number
//! of competency questions covered* come from inspecting the ontologies
//! themselves. Rust's RDF ecosystem is sparse, so this crate hand-rolls the
//! pieces the reproduction needs:
//!
//! * [`model`] — an RDF-style triple graph plus an OWL-flavoured
//!   [`model::Ontology`] view (classes, properties, individuals,
//!   annotations, imports);
//! * [`turtle`] — a lexer/parser/serializer for a practical Turtle subset
//!   (round-trip tested);
//! * [`vocab`] — the RDF/RDFS/OWL/DC vocabulary constants used throughout;
//! * [`metrics`] — structural metrics (entity counts, hierarchy depth,
//!   annotation coverage) feeding the *understandability* criteria;
//! * [`naming`] — identifier-style analysis feeding the *adequacy of naming
//!   conventions* criterion;
//! * [`cq`] — competency-question coverage feeding the *number of functional
//!   requirements covered* criterion (the paper's `ValueT`);
//! * [`generator`] — a seeded synthetic-ontology generator used by examples,
//!   tests and benchmarks in place of the paper's 23 proprietary multimedia
//!   ontologies.

pub mod cq;
pub mod generator;
pub mod metrics;
pub mod model;
pub mod module;
pub mod naming;
pub mod ntriples;
pub mod turtle;
pub mod vocab;

pub use cq::{CompetencyQuestion, CqCoverage};
pub use generator::{GeneratorConfig, OntologyGenerator};
pub use metrics::OntologyMetrics;
pub use model::{Graph, Iri, Literal, Ontology, PrefixMap, Term, Triple};
pub use module::{extract_module, Module, ModuleOptions};
pub use naming::{NamingReport, NamingStyle};
pub use ntriples::{parse_ntriples, write_ntriples};
pub use turtle::{parse_turtle, write_turtle, TurtleError};
