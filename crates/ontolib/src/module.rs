//! Ontology **module extraction**: given a *signature* (a set of entities
//! of interest), extract the self-contained fragment of an ontology needed
//! to reason about it.
//!
//! The paper's *adequacy of knowledge extraction* criterion asks "whether
//! it is easy to identify parts of the candidate ontology to be reused or
//! extracted", citing Cuenca-Grau et al., *"Just the right amount:
//! extracting modules from ontologies"* (ref \[4\]). This module implements a
//! syntactic approximation suitable for the RDFS-level axioms in this
//! workspace: starting from the signature, it closes over
//!
//! * all superclasses (upward `rdfs:subClassOf` closure),
//! * properties whose domain or range mentions a collected class (plus the
//!   class on the other end),
//! * annotations (`rdfs:label`, `rdfs:comment`) of collected entities,
//! * individuals typed by collected classes (optional).
//!
//! The result is a new [`Graph`]/[`Ontology`] that parses, serializes and
//! assesses like any other — exactly what the NeOn *integration* activity
//! consumes when only part of a candidate is worth reusing.

use crate::model::{Graph, Iri, Ontology, Term};
use crate::vocab;
use std::collections::BTreeSet;

/// Options for [`extract_module`].
#[derive(Debug, Clone)]
pub struct ModuleOptions {
    /// Follow `rdfs:subClassOf` upward from signature classes (default on).
    pub include_superclasses: bool,
    /// Pull in properties whose domain/range touches the module (default
    /// on).
    pub include_properties: bool,
    /// Pull in individuals typed by module classes (default off — TBox
    /// modules are the common case for reuse).
    pub include_individuals: bool,
    /// Keep labels/comments of module entities (default on).
    pub include_annotations: bool,
}

impl Default for ModuleOptions {
    fn default() -> ModuleOptions {
        ModuleOptions {
            include_superclasses: true,
            include_properties: true,
            include_individuals: false,
            include_annotations: true,
        }
    }
}

/// Result of an extraction.
#[derive(Debug, Clone)]
pub struct Module {
    /// The extracted fragment as a standalone ontology.
    pub ontology: Ontology,
    /// Entities of the requested signature that were not found at all.
    pub unresolved: Vec<Iri>,
    /// Final signature (requested + pulled-in entities).
    pub signature: BTreeSet<Iri>,
}

impl Module {
    /// Size ratio of the module against its source (triples).
    pub fn compression(&self, source: &Ontology) -> f64 {
        if source.graph.is_empty() {
            return 1.0;
        }
        self.ontology.graph.len() as f64 / source.graph.len() as f64
    }
}

/// Extract the module of `signature` from `source`.
pub fn extract_module(source: &Ontology, signature: &[Iri], opts: &ModuleOptions) -> Module {
    let mut sig: BTreeSet<Iri> = BTreeSet::new();
    let mut unresolved = Vec::new();
    for e in signature {
        let known = source.classes.contains(e)
            || source.object_properties.contains(e)
            || source.datatype_properties.contains(e)
            || source.individuals.contains(e);
        if known {
            sig.insert(e.clone());
        } else {
            unresolved.push(e.clone());
        }
    }

    // 1. Upward subclass closure.
    if opts.include_superclasses {
        let mut frontier: Vec<Iri> = sig.iter().cloned().collect();
        while let Some(c) = frontier.pop() {
            for sup in source.superclasses(&c) {
                if sig.insert(sup.clone()) {
                    frontier.push(sup.clone());
                }
            }
        }
    }

    // 2. Properties touching the module (and the classes on the other end).
    if opts.include_properties {
        let mut additions: Vec<Iri> = Vec::new();
        for t in source.graph.triples() {
            let (is_domain, is_range) = match t.predicate.as_str() {
                vocab::RDFS_DOMAIN => (true, false),
                vocab::RDFS_RANGE => (false, true),
                _ => continue,
            };
            let _ = is_range;
            let Some(prop) = t.subject.as_iri() else {
                continue;
            };
            let Some(class) = t.object.as_iri() else {
                continue;
            };
            if sig.contains(class) {
                additions.push(prop.clone());
            }
            let _ = is_domain;
        }
        for prop in additions {
            sig.insert(prop.clone());
            // carry the other end of the property's domain/range
            let subj = Term::Iri(prop);
            for p in [vocab::RDFS_DOMAIN, vocab::RDFS_RANGE] {
                for obj in source.graph.objects_of(&subj, p) {
                    if let Some(c) = obj.as_iri() {
                        sig.insert(c.clone());
                    }
                }
            }
        }
    }

    // 3. Individuals typed by module classes.
    if opts.include_individuals {
        let classes: Vec<Iri> = sig.iter().cloned().collect();
        for c in classes {
            for inst in source.graph.instances_of(c.as_str()) {
                if let Some(i) = inst.as_iri() {
                    sig.insert(i.clone());
                }
            }
        }
    }

    // 4. Copy every triple whose subject is in the signature and whose
    //    object (if an IRI entity of the source) is too — keeping the
    //    fragment closed.
    let mut g = Graph::new();
    for (p, ns) in source.graph.prefixes.iter() {
        g.prefixes.insert(p.clone(), ns.clone());
    }
    for t in source.graph.triples() {
        let Some(subj) = t.subject.as_iri() else {
            continue;
        };
        if !sig.contains(subj) {
            continue;
        }
        let keep = match t.predicate.as_str() {
            vocab::RDFS_LABEL | vocab::RDFS_COMMENT => opts.include_annotations,
            vocab::RDF_TYPE => match t.object.as_iri() {
                // type declarations: keep built-in types, and instance
                // typing only when the class is in the module
                Some(ty) if ty.as_str().starts_with(vocab::OWL_NS) => true,
                Some(ty) => sig.contains(ty),
                None => false,
            },
            vocab::RDFS_SUBCLASS_OF | vocab::RDFS_DOMAIN | vocab::RDFS_RANGE => {
                t.object.as_iri().map(|o| sig.contains(o)).unwrap_or(false)
            }
            _ => match t.object.as_iri() {
                Some(o) => sig.contains(o) || !is_source_entity(source, o),
                None => true, // literals and blanks travel with the subject
            },
        };
        if keep {
            g.insert(t.clone());
        }
    }
    g.dedup();

    Module {
        ontology: Ontology::from_graph(g),
        unresolved,
        signature: sig,
    }
}

fn is_source_entity(source: &Ontology, iri: &Iri) -> bool {
    source.classes.contains(iri)
        || source.object_properties.contains(iri)
        || source.datatype_properties.contains(iri)
        || source.individuals.contains(iri)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Literal;

    /// Media <- Video <- Clip ; Audio <- Track ; hasDuration: Video -> (dt)
    /// depicts: Video -> Agent ; clip1 : Clip
    fn source() -> Ontology {
        let mut g = Graph::new();
        g.prefixes.insert("ex", "http://e/");
        let classes = ["Media", "Video", "Clip", "Audio", "Track", "Agent"];
        for c in classes {
            g.add(
                Term::iri(format!("http://e/{c}")),
                vocab::RDF_TYPE,
                Term::iri(vocab::OWL_CLASS),
            );
        }
        g.add(
            Term::iri("http://e/Video"),
            vocab::RDFS_SUBCLASS_OF,
            Term::iri("http://e/Media"),
        );
        g.add(
            Term::iri("http://e/Clip"),
            vocab::RDFS_SUBCLASS_OF,
            Term::iri("http://e/Video"),
        );
        g.add(
            Term::iri("http://e/Track"),
            vocab::RDFS_SUBCLASS_OF,
            Term::iri("http://e/Audio"),
        );
        g.add(
            Term::iri("http://e/hasDuration"),
            vocab::RDF_TYPE,
            Term::iri(vocab::OWL_DATATYPE_PROPERTY),
        );
        g.add(
            Term::iri("http://e/hasDuration"),
            vocab::RDFS_DOMAIN,
            Term::iri("http://e/Video"),
        );
        g.add(
            Term::iri("http://e/depicts"),
            vocab::RDF_TYPE,
            Term::iri(vocab::OWL_OBJECT_PROPERTY),
        );
        g.add(
            Term::iri("http://e/depicts"),
            vocab::RDFS_DOMAIN,
            Term::iri("http://e/Video"),
        );
        g.add(
            Term::iri("http://e/depicts"),
            vocab::RDFS_RANGE,
            Term::iri("http://e/Agent"),
        );
        g.add(
            Term::iri("http://e/Video"),
            vocab::RDFS_LABEL,
            Term::Literal(Literal::plain("Video")),
        );
        g.add(
            Term::iri("http://e/clip1"),
            vocab::RDF_TYPE,
            Term::iri("http://e/Clip"),
        );
        Ontology::from_graph(g)
    }

    #[test]
    fn module_closes_upward() {
        let src = source();
        let m = extract_module(
            &src,
            &[Iri::new("http://e/Clip")],
            &ModuleOptions::default(),
        );
        assert!(m.signature.contains(&Iri::new("http://e/Video")));
        assert!(m.signature.contains(&Iri::new("http://e/Media")));
        // The audio branch stays out.
        assert!(!m.signature.contains(&Iri::new("http://e/Audio")));
        assert!(!m.ontology.classes.contains(&Iri::new("http://e/Track")));
        assert!(m.unresolved.is_empty());
    }

    #[test]
    fn module_pulls_in_touching_properties_and_their_ranges() {
        let src = source();
        let m = extract_module(
            &src,
            &[Iri::new("http://e/Video")],
            &ModuleOptions::default(),
        );
        assert!(m
            .ontology
            .datatype_properties
            .contains(&Iri::new("http://e/hasDuration")));
        assert!(m
            .ontology
            .object_properties
            .contains(&Iri::new("http://e/depicts")));
        // depicts' range (Agent) comes along so the fragment is closed.
        assert!(m.ontology.classes.contains(&Iri::new("http://e/Agent")));
    }

    #[test]
    fn annotations_follow_the_flag() {
        let src = source();
        let with = extract_module(
            &src,
            &[Iri::new("http://e/Video")],
            &ModuleOptions::default(),
        );
        assert_eq!(
            with.ontology.label(&Iri::new("http://e/Video")),
            Some("Video")
        );
        let without = extract_module(
            &src,
            &[Iri::new("http://e/Video")],
            &ModuleOptions {
                include_annotations: false,
                ..ModuleOptions::default()
            },
        );
        assert_eq!(without.ontology.label(&Iri::new("http://e/Video")), None);
    }

    #[test]
    fn individuals_follow_the_flag() {
        let src = source();
        let tbox = extract_module(
            &src,
            &[Iri::new("http://e/Clip")],
            &ModuleOptions::default(),
        );
        assert!(tbox.ontology.individuals.is_empty());
        let abox = extract_module(
            &src,
            &[Iri::new("http://e/Clip")],
            &ModuleOptions {
                include_individuals: true,
                ..ModuleOptions::default()
            },
        );
        assert!(abox
            .ontology
            .individuals
            .contains(&Iri::new("http://e/clip1")));
    }

    #[test]
    fn unknown_signature_entities_are_reported() {
        let src = source();
        let m = extract_module(
            &src,
            &[Iri::new("http://e/Nope"), Iri::new("http://e/Video")],
            &ModuleOptions::default(),
        );
        assert_eq!(m.unresolved, vec![Iri::new("http://e/Nope")]);
        assert!(m.ontology.classes.contains(&Iri::new("http://e/Video")));
    }

    #[test]
    fn module_is_smaller_and_serializable() {
        let src = source();
        let m = extract_module(
            &src,
            &[Iri::new("http://e/Track")],
            &ModuleOptions::default(),
        );
        assert!(m.compression(&src) < 1.0);
        let text = crate::turtle::write_turtle(&m.ontology.graph);
        let back = crate::turtle::parse_turtle(&text).expect("module serializes");
        assert_eq!(back.len(), m.ontology.graph.len());
    }

    #[test]
    fn empty_signature_yields_empty_module() {
        let src = source();
        let m = extract_module(&src, &[], &ModuleOptions::default());
        assert!(m.ontology.graph.is_empty());
        assert_eq!(m.compression(&src), 0.0);
    }

    #[test]
    fn module_of_generated_ontology_roundtrips() {
        use crate::generator::{GeneratorConfig, OntologyGenerator};
        let src = OntologyGenerator::new(GeneratorConfig {
            num_classes: 30,
            seed: 3,
            ..GeneratorConfig::default()
        })
        .generate();
        let some_class = src.classes.iter().next().expect("non-empty").clone();
        let m = extract_module(&src, &[some_class], &ModuleOptions::default());
        assert!(!m.ontology.graph.is_empty());
        assert!(m.compression(&src) <= 1.0);
    }
}
