//! Competency-question (CQ) coverage.
//!
//! The paper's *number of functional requirements covered* criterion counts
//! how many of the CQs written for the target ontology (M3) a candidate
//! ontology can answer (Gruninger & Fox's methodology, ref \[16\]). The
//! measurable proxy implemented here: a CQ is *covered* when a sufficient
//! share of its key terms match the candidate's lexicon (entity local names
//! and labels, tokenized and lightly normalized).

use crate::model::Ontology;
use crate::naming::tokenize;
use std::collections::BTreeSet;

/// Words carrying no domain meaning, skipped during term extraction.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "be", "by", "can", "do", "does", "for", "from", "has", "have", "how",
    "in", "is", "it", "its", "many", "much", "of", "on", "or", "that", "the", "there", "to",
    "what", "when", "where", "which", "who", "with",
];

/// A competency question plus its extracted key terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompetencyQuestion {
    pub text: String,
    pub terms: BTreeSet<String>,
}

impl CompetencyQuestion {
    /// Build from free text; key terms are the normalized non-stopwords.
    pub fn new(text: impl Into<String>) -> CompetencyQuestion {
        let text = text.into();
        let terms = text
            .split(|c: char| !c.is_alphanumeric())
            .map(normalize)
            .filter(|w| w.len() > 1 && !STOPWORDS.contains(&w.as_str()))
            .collect();
        CompetencyQuestion { text, terms }
    }
}

/// Lowercase and fold trivial plurals (`images` → `image`, `properties` →
/// `property`). Deliberately conservative — no full stemmer.
fn normalize(word: &str) -> String {
    let w = word.to_lowercase();
    if let Some(stem) = w.strip_suffix("ies") {
        if stem.len() >= 3 {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = w.strip_suffix('s') {
        if stem.len() >= 3 && !stem.ends_with('s') && !stem.ends_with('u') {
            return stem.to_string();
        }
    }
    w
}

/// Result of matching a CQ set against one ontology.
#[derive(Debug, Clone, PartialEq)]
pub struct CqCoverage {
    /// Per-question flags, aligned with the input order.
    pub covered: Vec<bool>,
    /// Number of questions judged covered.
    pub num_covered: usize,
    pub total: usize,
}

impl CqCoverage {
    /// Fraction covered in `[0,1]`.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.num_covered as f64 / self.total as f64
        }
    }

    /// Match `questions` against `ontology`. A question counts as covered
    /// when at least `threshold` (e.g. 0.6) of its terms appear in the
    /// ontology lexicon.
    pub fn compute(
        ontology: &Ontology,
        questions: &[CompetencyQuestion],
        threshold: f64,
    ) -> CqCoverage {
        let lexicon = build_lexicon(ontology);
        let covered: Vec<bool> = questions
            .iter()
            .map(|q| {
                if q.terms.is_empty() {
                    return false;
                }
                let hits = q.terms.iter().filter(|t| lexicon.contains(*t)).count();
                hits as f64 / q.terms.len() as f64 >= threshold
            })
            .collect();
        let num_covered = covered.iter().filter(|&&c| c).count();
        CqCoverage {
            covered,
            num_covered,
            total: questions.len(),
        }
    }
}

/// All normalized word tokens from entity local names and labels.
pub fn build_lexicon(o: &Ontology) -> BTreeSet<String> {
    let mut lex = BTreeSet::new();
    for (iri, _) in o.entities() {
        for tok in tokenize(iri.local_name()) {
            lex.insert(normalize(&tok));
        }
    }
    for labels in o.labels.values() {
        for l in labels {
            for tok in l.lexical.split(|c: char| !c.is_alphanumeric()) {
                if !tok.is_empty() {
                    lex.insert(normalize(tok));
                }
            }
        }
    }
    lex
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Graph, Literal, Term};
    use crate::vocab;

    fn mm_ontology() -> Ontology {
        let mut g = Graph::new();
        for c in [
            "http://e/VideoSegment",
            "http://e/AudioTrack",
            "http://e/Image",
        ] {
            g.add(Term::iri(c), vocab::RDF_TYPE, Term::iri(vocab::OWL_CLASS));
        }
        g.add(
            Term::iri("http://e/hasDuration"),
            vocab::RDF_TYPE,
            Term::iri(vocab::OWL_DATATYPE_PROPERTY),
        );
        g.add(
            Term::iri("http://e/Image"),
            vocab::RDFS_LABEL,
            Term::Literal(Literal::plain("still picture")),
        );
        Ontology::from_graph(g)
    }

    #[test]
    fn terms_extracted_without_stopwords() {
        let q = CompetencyQuestion::new("What is the duration of a video segment?");
        assert!(q.terms.contains("duration"));
        assert!(q.terms.contains("video"));
        assert!(q.terms.contains("segment"));
        assert!(!q.terms.contains("the"));
        assert!(!q.terms.contains("is"));
    }

    #[test]
    fn plural_folding() {
        assert_eq!(normalize("images"), "image");
        assert_eq!(normalize("properties"), "property");
        assert_eq!(normalize("glass"), "glass"); // double-s left alone
        assert_eq!(normalize("Video"), "video");
    }

    #[test]
    fn lexicon_includes_names_and_labels() {
        let lex = build_lexicon(&mm_ontology());
        assert!(lex.contains("video"));
        assert!(lex.contains("segment"));
        assert!(lex.contains("duration"));
        assert!(lex.contains("picture")); // from the label
    }

    #[test]
    fn coverage_counts_matching_questions() {
        let o = mm_ontology();
        let qs = vec![
            CompetencyQuestion::new("What is the duration of a video segment?"),
            CompetencyQuestion::new("Which audio tracks exist?"),
            CompetencyQuestion::new("Who composed the symphony in the opera house?"),
        ];
        let cov = CqCoverage::compute(&o, &qs, 0.6);
        assert_eq!(cov.total, 3);
        assert!(cov.covered[0]);
        assert!(cov.covered[1]);
        assert!(!cov.covered[2]);
        assert_eq!(cov.num_covered, 2);
        assert!((cov.fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_controls_strictness() {
        let o = mm_ontology();
        let q = vec![CompetencyQuestion::new(
            "video segment duration frames codec",
        )];
        // 3 of 5 terms match (video, segment, duration).
        assert_eq!(CqCoverage::compute(&o, &q, 0.6).num_covered, 1);
        assert_eq!(CqCoverage::compute(&o, &q, 0.8).num_covered, 0);
    }

    #[test]
    fn empty_inputs() {
        let o = mm_ontology();
        let cov = CqCoverage::compute(&o, &[], 0.6);
        assert_eq!(cov.fraction(), 0.0);
        let blank = vec![CompetencyQuestion::new("??")];
        let cov = CqCoverage::compute(&o, &blank, 0.6);
        assert!(!cov.covered[0]);
    }
}
