//! Recursive-descent parser over the token stream producing a [`Graph`].

use super::lexer::{Lexer, Token, TokenKind};
use super::TurtleError;
use crate::model::{Graph, Iri, Literal, Term, Triple};
use crate::vocab;

/// Parse a Turtle document into a [`Graph`].
/// # Example
///
/// ```
/// let g = ontolib::parse_turtle(
///     "@prefix ex: <http://e/> . ex:Video a owl:Class ; rdfs:label \"Video\" .",
/// ).expect("valid turtle");
/// assert_eq!(g.len(), 2);
/// ```
pub fn parse_turtle(src: &str) -> Result<Graph, TurtleError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser {
        tokens,
        pos: 0,
        graph: Graph::new(),
        base: None,
        blank_counter: 0,
    }
    .parse()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    graph: Graph,
    base: Option<String>,
    blank_counter: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> TurtleError {
        let t = self.peek();
        TurtleError::new(t.line, t.col, msg)
    }

    fn expect_dot(&mut self) -> Result<(), TurtleError> {
        match self.bump().kind {
            TokenKind::Dot => Ok(()),
            other => Err(self.err_here(format!("expected '.', found {other:?}"))),
        }
    }

    fn parse(mut self) -> Result<Graph, TurtleError> {
        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::AtPrefix => {
                    self.bump();
                    self.parse_prefix()?;
                }
                TokenKind::AtBase => {
                    self.bump();
                    self.parse_base()?;
                }
                _ => self.parse_statement()?,
            }
        }
        Ok(self.graph)
    }

    fn parse_prefix(&mut self) -> Result<(), TurtleError> {
        let name = match self.bump().kind {
            TokenKind::PrefixedName { prefix, local } if local.is_empty() => prefix,
            other => return Err(self.err_here(format!("expected prefix name, found {other:?}"))),
        };
        let ns = match self.bump().kind {
            TokenKind::IriRef(iri) => self.resolve(iri),
            other => return Err(self.err_here(format!("expected namespace IRI, found {other:?}"))),
        };
        self.graph.prefixes.insert(name, ns);
        self.expect_dot()
    }

    fn parse_base(&mut self) -> Result<(), TurtleError> {
        match self.bump().kind {
            TokenKind::IriRef(iri) => self.base = Some(iri),
            other => return Err(self.err_here(format!("expected base IRI, found {other:?}"))),
        }
        self.expect_dot()
    }

    /// Resolve a (possibly relative) IRI against `@base`.
    fn resolve(&self, iri: String) -> String {
        if iri.contains("://") || iri.starts_with("urn:") || iri.starts_with("mailto:") {
            return iri;
        }
        match &self.base {
            Some(b) if iri.starts_with('#') => format!("{}{}", b.trim_end_matches('#'), iri),
            Some(b) => {
                if b.ends_with('/') || b.ends_with('#') {
                    format!("{b}{iri}")
                } else {
                    format!("{b}/{iri}")
                }
            }
            None => iri,
        }
    }

    fn fresh_blank(&mut self) -> Term {
        self.blank_counter += 1;
        Term::Blank(format!("anon{}", self.blank_counter))
    }

    fn parse_statement(&mut self) -> Result<(), TurtleError> {
        let subject = self.parse_subject()?;
        self.parse_predicate_object_list(&subject)?;
        self.expect_dot()
    }

    fn parse_subject(&mut self) -> Result<Term, TurtleError> {
        let t = self.bump();
        let (tl, tc) = (t.line, t.col);
        match t.kind {
            TokenKind::IriRef(i) => Ok(Term::Iri(Iri::new(self.resolve(i)))),
            TokenKind::PrefixedName { prefix, local } => self.expand(&prefix, &local, tl, tc),
            TokenKind::BlankNode(label) => Ok(Term::Blank(label)),
            TokenKind::LBracket => {
                // anonymous subject with property list: [ p o ; … ] p2 o2 .
                let node = self.fresh_blank();
                if self.peek().kind != TokenKind::RBracket {
                    self.parse_predicate_object_list(&node)?;
                }
                match self.bump().kind {
                    TokenKind::RBracket => Ok(node),
                    other => Err(self.err_here(format!("expected ']', found {other:?}"))),
                }
            }
            other => Err(self.err_here(format!("expected subject, found {other:?}"))),
        }
    }

    fn expand(
        &self,
        prefix: &str,
        local: &str,
        line: usize,
        col: usize,
    ) -> Result<Term, TurtleError> {
        self.graph
            .prefixes
            .expand(prefix, local)
            .map(Term::Iri)
            .ok_or_else(|| TurtleError::new(line, col, format!("unknown prefix '{prefix}:'")))
    }

    fn parse_predicate_object_list(&mut self, subject: &Term) -> Result<(), TurtleError> {
        loop {
            let predicate = self.parse_predicate()?;
            self.parse_object_list(subject, &predicate)?;
            match self.peek().kind {
                TokenKind::Semicolon => {
                    self.bump();
                    // allow trailing ';' before '.' or ']'
                    if matches!(self.peek().kind, TokenKind::Dot | TokenKind::RBracket) {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(())
    }

    fn parse_predicate(&mut self) -> Result<Iri, TurtleError> {
        let t = self.bump();
        let (tl, tc) = (t.line, t.col);
        match t.kind {
            TokenKind::A => Ok(Iri::new(vocab::RDF_TYPE)),
            TokenKind::IriRef(i) => Ok(Iri::new(self.resolve(i))),
            TokenKind::PrefixedName { prefix, local } => {
                match self.expand(&prefix, &local, tl, tc)? {
                    Term::Iri(i) => Ok(i),
                    _ => unreachable!("expand returns IRIs"),
                }
            }
            other => Err(self.err_here(format!("expected predicate, found {other:?}"))),
        }
    }

    fn parse_object_list(&mut self, subject: &Term, predicate: &Iri) -> Result<(), TurtleError> {
        loop {
            let object = self.parse_object()?;
            self.graph
                .insert(Triple::new(subject.clone(), predicate.clone(), object));
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<Term, TurtleError> {
        let t = self.bump();
        let (tl, tc) = (t.line, t.col);
        match t.kind {
            TokenKind::IriRef(i) => Ok(Term::Iri(Iri::new(self.resolve(i)))),
            TokenKind::PrefixedName { prefix, local } => self.expand(&prefix, &local, tl, tc),
            TokenKind::BlankNode(label) => Ok(Term::Blank(label)),
            TokenKind::Boolean(b) => Ok(Term::Literal(Literal::boolean(b))),
            TokenKind::Number(n) => {
                let dt = if n.contains('.') || n.contains('e') || n.contains('E') {
                    vocab::XSD_DECIMAL
                } else {
                    vocab::XSD_INTEGER
                };
                Ok(Term::Literal(Literal::typed(n, Iri::new(dt))))
            }
            TokenKind::StringLit(s) => {
                // optional @lang or ^^datatype
                match self.peek().kind.clone() {
                    TokenKind::LangTag(lang) => {
                        self.bump();
                        Ok(Term::Literal(Literal::lang_tagged(s, lang)))
                    }
                    TokenKind::CaretCaret => {
                        self.bump();
                        let t2 = self.bump();
                        let (t2l, t2c) = (t2.line, t2.col);
                        let dt = match t2.kind {
                            TokenKind::IriRef(i) => Iri::new(self.resolve(i)),
                            TokenKind::PrefixedName { prefix, local } => {
                                match self.expand(&prefix, &local, t2l, t2c)? {
                                    Term::Iri(i) => i,
                                    _ => unreachable!(),
                                }
                            }
                            other => {
                                return Err(
                                    self.err_here(format!("expected datatype, found {other:?}"))
                                )
                            }
                        };
                        Ok(Term::Literal(Literal::typed(s, dt)))
                    }
                    _ => Ok(Term::Literal(Literal::plain(s))),
                }
            }
            TokenKind::LBracket => {
                // anonymous node with optional inline properties
                let node = self.fresh_blank();
                if self.peek().kind != TokenKind::RBracket {
                    self.parse_predicate_object_list(&node)?;
                }
                match self.bump().kind {
                    TokenKind::RBracket => Ok(node),
                    other => Err(self.err_here(format!("expected ']', found {other:?}"))),
                }
            }
            TokenKind::LParen => {
                Err(self.err_here("RDF collections '( … )' are not supported by this subset"))
            }
            other => Err(self.err_here(format!("expected object, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Term;

    #[test]
    fn parse_simple_document() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:A a ex:B .",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
        let t = &g.triples()[0];
        assert_eq!(t.subject, Term::iri("http://e/A"));
        assert_eq!(t.predicate.as_str(), vocab::RDF_TYPE);
    }

    #[test]
    fn parse_predicate_and_object_lists() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:A ex:p ex:B , ex:C ; ex:q \"v\" .",
        )
        .unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn parse_trailing_semicolon() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:A ex:p ex:B ; .",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parse_typed_and_tagged_literals() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             ex:A ex:age 42 ; ex:w 1.5 ; ex:ok true ; ex:n \"x\"@en ; ex:d \"y\"^^xsd:string .",
        )
        .unwrap();
        assert_eq!(g.len(), 5);
        let lits: Vec<_> = g
            .triples()
            .iter()
            .filter_map(|t| t.object.as_literal())
            .collect();
        assert_eq!(lits.len(), 5);
        assert!(lits.iter().any(|l| l.lang.as_deref() == Some("en")));
        assert!(lits
            .iter()
            .any(|l| l.datatype.as_ref().map(|d| d.as_str()) == Some(vocab::XSD_INTEGER)));
    }

    #[test]
    fn parse_blank_nodes() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:A ex:p _:b1 .\n\
             _:b1 ex:q ex:C .",
        )
        .unwrap();
        assert_eq!(g.len(), 2);
        assert!(matches!(g.triples()[0].object, Term::Blank(_)));
    }

    #[test]
    fn parse_anonymous_bracket_node() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:A ex:p [ ex:q ex:B ; ex:r \"s\" ] .",
        )
        .unwrap();
        // 1 outer + 2 inner
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn parse_empty_brackets() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:A ex:p [ ] .",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parse_base_resolution() {
        let g = parse_turtle(
            "@base <http://e/onto> .\n\
             <#A> a <#B> .\n\
             <rel> a <#C> .",
        )
        .unwrap();
        let subs: Vec<_> = g
            .triples()
            .iter()
            .filter_map(|t| t.subject.as_iri())
            .map(|i| i.as_str())
            .collect();
        assert!(subs.contains(&"http://e/onto#A"));
        assert!(subs.contains(&"http://e/onto/rel"));
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let err = parse_turtle("nope:A a nope:B .").unwrap_err();
        assert!(err.message.contains("unknown prefix"), "{err}");
    }

    #[test]
    fn collections_are_rejected_with_message() {
        let err = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:A ex:p ( ex:B ex:C ) .",
        )
        .unwrap_err();
        assert!(err.message.contains("not supported"));
    }

    #[test]
    fn missing_dot_is_an_error() {
        assert!(parse_turtle("@prefix ex: <http://e/> .\nex:A a ex:B").is_err());
    }

    #[test]
    fn standard_prefixes_are_preloaded() {
        // rdf:, rdfs:, owl:, xsd:, dc: usable without declaration.
        let g = parse_turtle("rdfs:label a rdf:Property .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn empty_document_parses() {
        assert_eq!(parse_turtle("").unwrap().len(), 0);
        assert_eq!(parse_turtle("# only a comment\n").unwrap().len(), 0);
    }
}
