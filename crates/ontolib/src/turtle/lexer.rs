//! Hand-written Turtle lexer producing a flat token stream with positions.

use super::TurtleError;

/// Token categories of the supported Turtle subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `<http://…>` (contents, unescaped)
    IriRef(String),
    /// `prefix:local` — both parts may be empty (`:x`, `rdf:`)
    PrefixedName {
        prefix: String,
        local: String,
    },
    /// `_:label`
    BlankNode(String),
    /// String literal contents (after escape processing)
    StringLit(String),
    /// `@lang` tag following a string
    LangTag(String),
    /// Bare numeric literal (lexical form kept verbatim)
    Number(String),
    /// `true` / `false`
    Boolean(bool),
    /// `@prefix`
    AtPrefix,
    /// `@base`
    AtBase,
    /// `a` keyword
    A,
    Dot,
    Semicolon,
    Comma,
    /// `^^`
    CaretCaret,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Eof,
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

/// Streaming lexer over the source text.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> TurtleError {
        TurtleError::new(self.line, self.col, msg)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Lex the whole input into a token vector (ending with `Eof`).
    pub fn tokenize(mut self) -> Result<Vec<Token>, TurtleError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let line = self.line;
            let col = self.col;
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let kind = match c {
                b'<' => self.lex_iri()?,
                b'"' => self.lex_string()?,
                b'@' => self.lex_at()?,
                b'_' if self.peek2() == Some(b':') => self.lex_blank()?,
                b'.' if !matches!(self.peek2(), Some(d) if d.is_ascii_digit()) => {
                    self.bump();
                    TokenKind::Dot
                }
                b';' => {
                    self.bump();
                    TokenKind::Semicolon
                }
                b',' => {
                    self.bump();
                    TokenKind::Comma
                }
                b'[' => {
                    self.bump();
                    TokenKind::LBracket
                }
                b']' => {
                    self.bump();
                    TokenKind::RBracket
                }
                b'(' => {
                    self.bump();
                    TokenKind::LParen
                }
                b')' => {
                    self.bump();
                    TokenKind::RParen
                }
                b'^' => {
                    self.bump();
                    if self.peek() == Some(b'^') {
                        self.bump();
                        TokenKind::CaretCaret
                    } else {
                        return Err(self.err("expected '^^'"));
                    }
                }
                c if c.is_ascii_digit() || c == b'+' || c == b'-' || c == b'.' => {
                    self.lex_number()?
                }
                _ => self.lex_name()?,
            };
            out.push(Token { kind, line, col });
        }
    }

    fn lex_iri(&mut self) -> Result<TokenKind, TurtleError> {
        self.bump(); // '<'
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'>') => return Ok(TokenKind::IriRef(s)),
                Some(b'\n') | None => return Err(self.err("unterminated IRI")),
                Some(b'\\') => match self.bump() {
                    Some(c) => {
                        s.push('\\');
                        s.push(c as char);
                    }
                    None => return Err(self.err("unterminated IRI escape")),
                },
                Some(c) => s.push(c as char),
            }
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind, TurtleError> {
        // Either "..." or """...""" (long string).
        self.bump(); // first quote
        let long = self.peek() == Some(b'"') && self.peek2() == Some(b'"');
        if long {
            self.bump();
            self.bump();
        } else if self.peek() == Some(b'"') {
            // empty short string ""
            self.bump();
            return Ok(TokenKind::StringLit(String::new()));
        }
        let mut s = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    if long {
                        // Count the full quote run: the final three close the
                        // string, any earlier ones are content ("a""""
                        // means content `a"` + terminator).
                        let mut run = 1usize;
                        while self.peek() == Some(b'"') {
                            self.bump();
                            run += 1;
                        }
                        if run >= 3 {
                            s.extend(std::iter::repeat_n('"', run - 3));
                            return Ok(TokenKind::StringLit(s));
                        }
                        s.extend(std::iter::repeat_n('"', run));
                    } else {
                        return Ok(TokenKind::StringLit(s));
                    }
                }
                b'\\' => {
                    let Some(e) = self.bump() else {
                        return Err(self.err("unterminated escape"));
                    };
                    match e {
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'u' => {
                            let mut hex = String::new();
                            for _ in 0..4 {
                                let Some(h) = self.bump() else {
                                    return Err(self.err("truncated \\u escape"));
                                };
                                hex.push(h as char);
                            }
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad code point"))?);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                b'\n' if !long => return Err(self.err("newline in short string")),
                c => {
                    // Collect the full UTF-8 sequence for multibyte chars.
                    if c < 0x80 {
                        s.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        for _ in 1..width {
                            self.bump();
                        }
                        let bytes = &self.src[start..start + width];
                        s.push_str(
                            std::str::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8"))?,
                        );
                    }
                }
            }
        }
    }

    fn lex_at(&mut self) -> Result<TokenKind, TurtleError> {
        self.bump(); // '@'
        let word = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'-');
        match word.as_str() {
            "prefix" => Ok(TokenKind::AtPrefix),
            "base" => Ok(TokenKind::AtBase),
            "" => Err(self.err("bare '@'")),
            lang => Ok(TokenKind::LangTag(lang.to_string())),
        }
    }

    fn lex_blank(&mut self) -> Result<TokenKind, TurtleError> {
        self.bump(); // '_'
        self.bump(); // ':'
        let label = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-');
        if label.is_empty() {
            return Err(self.err("empty blank node label"));
        }
        Ok(TokenKind::BlankNode(label))
    }

    fn lex_number(&mut self) -> Result<TokenKind, TurtleError> {
        let mut s = String::new();
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            s.push(self.bump().unwrap() as char);
        }
        let mut saw_digit = false;
        let mut saw_dot = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    saw_digit = true;
                    s.push(self.bump().unwrap() as char);
                }
                b'.' if !saw_dot => {
                    // A trailing '.' is the statement terminator, not part of
                    // the number, unless a digit follows.
                    if matches!(self.peek2(), Some(d) if d.is_ascii_digit()) {
                        saw_dot = true;
                        s.push(self.bump().unwrap() as char);
                    } else {
                        break;
                    }
                }
                b'e' | b'E' => {
                    s.push(self.bump().unwrap() as char);
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        s.push(self.bump().unwrap() as char);
                    }
                }
                _ => break,
            }
        }
        if !saw_digit {
            return Err(self.err("malformed number"));
        }
        Ok(TokenKind::Number(s))
    }

    fn lex_name(&mut self) -> Result<TokenKind, TurtleError> {
        // prefixed name, `a`, or boolean.
        let first = self.take_while(|c| {
            c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c >= 0x80
        });
        if self.peek() == Some(b':') {
            self.bump();
            let local = self.take_while(|c| {
                c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c >= 0x80
            });
            // Turtle allows a trailing '.' in locals but that collides with
            // the statement dot; strip it and rewind one byte if needed.
            let (local, strip) = match local.strip_suffix('.') {
                Some(rest) => (rest.to_string(), true),
                None => (local, false),
            };
            if strip {
                self.pos -= 1;
                self.col -= 1;
            }
            return Ok(TokenKind::PrefixedName {
                prefix: first,
                local,
            });
        }
        match first.as_str() {
            "a" => Ok(TokenKind::A),
            "true" => Ok(TokenKind::Boolean(true)),
            "false" => Ok(TokenKind::Boolean(false)),
            "" => Err(self.err(format!(
                "unexpected character '{}'",
                self.peek().map(|c| c as char).unwrap_or('?')
            ))),
            other => Err(self.err(format!("unexpected token '{other}'"))),
        }
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if pred(c) {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_basic_statement() {
        let k = kinds("ex:Video a owl:Class .");
        assert_eq!(
            k,
            vec![
                TokenKind::PrefixedName {
                    prefix: "ex".into(),
                    local: "Video".into()
                },
                TokenKind::A,
                TokenKind::PrefixedName {
                    prefix: "owl".into(),
                    local: "Class".into()
                },
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_prefix_directive() {
        let k = kinds("@prefix ex: <http://e/> .");
        assert_eq!(k[0], TokenKind::AtPrefix);
        assert_eq!(
            k[1],
            TokenKind::PrefixedName {
                prefix: "ex".into(),
                local: "".into()
            }
        );
        assert_eq!(k[2], TokenKind::IriRef("http://e/".into()));
    }

    #[test]
    fn lex_string_escapes() {
        let k = kinds(r#""a\nb\t\"q\\" "#);
        assert_eq!(k[0], TokenKind::StringLit("a\nb\t\"q\\".into()));
    }

    #[test]
    fn lex_unicode_escape() {
        let k = kinds(r#""é" "#);
        assert_eq!(k[0], TokenKind::StringLit("é".into()));
    }

    #[test]
    fn lex_long_string() {
        let k = kinds("\"\"\"two\nlines \"quoted\"\"\"\" ");
        assert_eq!(k[0], TokenKind::StringLit("two\nlines \"quoted\"".into()));
    }

    #[test]
    fn lex_empty_string() {
        assert_eq!(kinds(r#""" "#)[0], TokenKind::StringLit(String::new()));
    }

    #[test]
    fn lex_lang_tag_and_datatype() {
        let k = kinds(r#""hi"@en "3"^^xsd:int"#);
        assert_eq!(k[1], TokenKind::LangTag("en".into()));
        assert_eq!(k[3], TokenKind::CaretCaret);
    }

    #[test]
    fn lex_numbers() {
        let k = kinds("42 -7 3.25 1e4 .");
        assert_eq!(k[0], TokenKind::Number("42".into()));
        assert_eq!(k[1], TokenKind::Number("-7".into()));
        assert_eq!(k[2], TokenKind::Number("3.25".into()));
        assert_eq!(k[3], TokenKind::Number("1e4".into()));
        assert_eq!(k[4], TokenKind::Dot);
    }

    #[test]
    fn number_then_statement_dot() {
        // "3." must lex as Number(3) then Dot.
        let k = kinds("ex:x ex:v 3 .");
        assert!(matches!(k[2], TokenKind::Number(_)));
        assert_eq!(k[3], TokenKind::Dot);
    }

    #[test]
    fn lex_blank_nodes_and_brackets() {
        let k = kinds("_:b1 [ ] ( )");
        assert_eq!(k[0], TokenKind::BlankNode("b1".into()));
        assert_eq!(k[1], TokenKind::LBracket);
        assert_eq!(k[2], TokenKind::RBracket);
        assert_eq!(k[3], TokenKind::LParen);
        assert_eq!(k[4], TokenKind::RParen);
    }

    #[test]
    fn lex_comments_skipped() {
        let k = kinds("# a comment\nex:a a ex:B . # trailing");
        assert_eq!(k.len(), 5); // name, a, name, dot, eof
    }

    #[test]
    fn lex_booleans() {
        let k = kinds("true false");
        assert_eq!(k[0], TokenKind::Boolean(true));
        assert_eq!(k[1], TokenKind::Boolean(false));
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
    }

    #[test]
    fn error_on_unterminated_iri() {
        assert!(Lexer::new("<http://e").tokenize().is_err());
    }

    #[test]
    fn error_position_is_tracked() {
        let err = Lexer::new("ex:a ex:b\n  \"oops").tokenize().unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn lex_unicode_in_string() {
        let k = kinds("\"ontología\" ");
        assert_eq!(k[0], TokenKind::StringLit("ontología".into()));
    }
}
