//! A practical Turtle subset: parser and serializer.
//!
//! Supported syntax — sufficient for OWL ontologies of the kind the paper's
//! case study assesses:
//!
//! * `@prefix p: <ns> .` and `@base <iri> .`
//! * subject–predicate–object statements with `;` (predicate lists) and
//!   `,` (object lists),
//! * `a` as `rdf:type`,
//! * `<iri>` references (resolved against `@base` when relative),
//! * prefixed names `p:local` (and `:local` for the empty prefix),
//! * literals: `"…"` with `\" \\ \n \t \r` escapes, `"""…"""` long strings,
//!   language tags `@en`, datatypes `^^xsd:int`, bare integers, decimals and
//!   booleans,
//! * blank nodes `_:b1` and anonymous `[ … ]` property lists,
//! * `#` comments.
//!
//! Not supported (rejected with a clear error): collections `( … )`,
//! SPARQL-style `PREFIX`, and RDF-star. These do not occur in the corpora
//! this workspace generates or assesses.

mod lexer;
mod parser;
mod writer;

pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse_turtle;
pub use writer::write_turtle;

use std::fmt;

/// Parse or serialization error with 1-based line/column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl TurtleError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> TurtleError {
        TurtleError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for TurtleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "turtle error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for TurtleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Graph;

    #[test]
    fn round_trip_preserves_triples() {
        let src = r#"
@prefix ex: <http://ex.org/mm#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:Video a owl:Class ;
    rdfs:label "Video"@en ;
    rdfs:comment "A moving image." ;
    rdfs:subClassOf ex:Media .

ex:duration a owl:DatatypeProperty ;
    rdfs:domain ex:Video .
"#;
        let g: Graph = parse_turtle(src).unwrap();
        assert_eq!(g.len(), 6);
        let out = write_turtle(&g);
        let g2 = parse_turtle(&out).unwrap();
        let mut a = g.triples().to_vec();
        let mut b = g2.triples().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "round trip changed the triple set:\n{out}");
    }

    #[test]
    fn error_reports_position() {
        let err = parse_turtle("ex:Broken").unwrap_err();
        assert!(err.line >= 1);
        assert!(!err.message.is_empty());
        assert!(err.to_string().contains("turtle error"));
    }
}
