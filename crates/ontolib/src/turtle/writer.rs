//! Turtle serializer: groups triples by subject, compresses IRIs through the
//! graph's prefix map, and emits `;`/`,` lists. Output parses back to the
//! same triple set (round-trip property-tested).

use crate::model::{Graph, Iri, Literal, Term};
use crate::vocab;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serialize a graph to Turtle text.
pub fn write_turtle(graph: &Graph) -> String {
    let mut out = String::new();
    for (p, ns) in graph.prefixes.iter() {
        let _ = writeln!(out, "@prefix {p}: <{ns}> .");
    }
    if !graph.prefixes.is_empty() {
        out.push('\n');
    }

    // subject -> predicate -> objects, preserving deterministic order.
    let mut by_subject: BTreeMap<Term, BTreeMap<Iri, Vec<Term>>> = BTreeMap::new();
    for t in graph.triples() {
        by_subject
            .entry(t.subject.clone())
            .or_default()
            .entry(t.predicate.clone())
            .or_default()
            .push(t.object.clone());
    }

    for (subject, po) in &by_subject {
        let _ = write!(out, "{}", render_term(graph, subject));
        let mut first_pred = true;
        for (pred, objects) in po {
            if first_pred {
                out.push(' ');
                first_pred = false;
            } else {
                out.push_str(" ;\n    ");
            }
            let _ = write!(out, "{}", render_predicate(graph, pred));
            let objs: Vec<String> = objects.iter().map(|o| render_term(graph, o)).collect();
            let _ = write!(out, " {}", objs.join(" , "));
        }
        out.push_str(" .\n");
    }
    out
}

fn render_predicate(graph: &Graph, p: &Iri) -> String {
    if p.as_str() == vocab::RDF_TYPE {
        return "a".to_string();
    }
    render_iri(graph, p)
}

fn render_iri(graph: &Graph, i: &Iri) -> String {
    match graph.prefixes.compress(i) {
        Some((prefix, local)) => format!("{prefix}:{local}"),
        None => format!("<{}>", i.as_str()),
    }
}

fn render_term(graph: &Graph, t: &Term) -> String {
    match t {
        Term::Iri(i) => render_iri(graph, i),
        Term::Blank(b) => format!("_:{b}"),
        Term::Literal(l) => render_literal(graph, l),
    }
}

fn render_literal(graph: &Graph, l: &Literal) -> String {
    // Bare numeric/boolean forms where the lexical form is canonical.
    if let Some(dt) = &l.datatype {
        match dt.as_str() {
            vocab::XSD_INTEGER if l.lexical.parse::<i64>().is_ok() => return l.lexical.clone(),
            vocab::XSD_DECIMAL if l.lexical.parse::<f64>().is_ok() && l.lexical.contains('.') => {
                return l.lexical.clone()
            }
            vocab::XSD_BOOLEAN if l.lexical == "true" || l.lexical == "false" => {
                return l.lexical.clone()
            }
            _ => {}
        }
    }
    let escaped = escape(&l.lexical);
    match (&l.lang, &l.datatype) {
        (Some(lang), _) => format!("\"{escaped}\"@{lang}"),
        (None, Some(dt)) => format!("\"{escaped}\"^^{}", render_iri(graph, dt)),
        (None, None) => format!("\"{escaped}\""),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle::parse_turtle;

    fn roundtrip(src: &str) {
        let g = parse_turtle(src).unwrap();
        let text = write_turtle(&g);
        let g2 = parse_turtle(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        let mut a = g.triples().to_vec();
        let mut b = g2.triples().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "round-trip mismatch:\n{text}");
    }

    #[test]
    fn writes_prefixes_and_groups_subjects() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:A a ex:B ; ex:p ex:C .\n\
             ex:A ex:p ex:D .",
        )
        .unwrap();
        let text = write_turtle(&g);
        // One subject block, object list for ex:p.
        assert_eq!(text.matches("ex:A").count(), 1, "{text}");
        assert!(text.contains("ex:C , ex:D"));
        assert!(text.contains("a ex:B"));
    }

    #[test]
    fn roundtrip_literals() {
        roundtrip(
            "@prefix ex: <http://e/> .\n\
             ex:A ex:s \"plain\" ; ex:l \"hi\"@en ; ex:i 42 ; ex:d 3.5 ; ex:b true ; \
             ex:t \"x\"^^xsd:string .",
        );
    }

    #[test]
    fn roundtrip_escapes() {
        roundtrip(
            "@prefix ex: <http://e/> .\n\
             ex:A ex:s \"line\\nbreak \\\"quoted\\\" back\\\\slash\" .",
        );
    }

    #[test]
    fn roundtrip_blank_nodes() {
        roundtrip(
            "@prefix ex: <http://e/> .\n\
             ex:A ex:p _:b1 . _:b1 ex:q ex:C .",
        );
    }

    #[test]
    fn uncompressible_iris_stay_angle_bracketed() {
        let g = parse_turtle("<http://nowhere.example/x y> <http://p/q> <http://o/z> .");
        // space in IRI means our lexer actually fails; use a clean one
        assert!(g.is_err() || g.is_ok());
        let g =
            parse_turtle("<http://unprefixed.example/Thing> a <http://unprefixed.example/Kind> .")
                .unwrap();
        let text = write_turtle(&g);
        assert!(text.contains("<http://unprefixed.example/Thing>"));
    }

    #[test]
    fn deterministic_output() {
        let src = "@prefix ex: <http://e/> .\nex:B a ex:K . ex:A a ex:K .";
        let g = parse_turtle(src).unwrap();
        assert_eq!(write_turtle(&g), write_turtle(&g.clone()));
    }
}
