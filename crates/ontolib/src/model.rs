//! RDF-style data model: IRIs, literals, triples, graphs, and an
//! OWL-flavoured [`Ontology`] view derived from a [`Graph`].

use crate::vocab;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An IRI (kept as a plain string; no normalization beyond trimming).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Iri(pub String);

impl Iri {
    pub fn new(s: impl Into<String>) -> Iri {
        Iri(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The local name: the fragment after `#`, or the last path segment.
    pub fn local_name(&self) -> &str {
        let s = self.0.as_str();
        if let Some(i) = s.rfind('#') {
            return &s[i + 1..];
        }
        if let Some(i) = s.rfind('/') {
            return &s[i + 1..];
        }
        if let Some(i) = s.rfind(':') {
            return &s[i + 1..];
        }
        s
    }

    /// The namespace part (everything up to and including the separator).
    pub fn namespace(&self) -> &str {
        let s = self.0.as_str();
        let cut = s
            .rfind('#')
            .or_else(|| s.rfind('/'))
            .or_else(|| s.rfind(':'));
        match cut {
            Some(i) => &s[..=i],
            None => "",
        }
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Iri {
    fn from(s: &str) -> Iri {
        Iri::new(s)
    }
}

/// An RDF literal: lexical form plus optional datatype or language tag.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Literal {
    pub lexical: String,
    pub datatype: Option<Iri>,
    pub lang: Option<String>,
}

impl Literal {
    pub fn plain(s: impl Into<String>) -> Literal {
        Literal {
            lexical: s.into(),
            datatype: None,
            lang: None,
        }
    }

    pub fn lang_tagged(s: impl Into<String>, lang: impl Into<String>) -> Literal {
        Literal {
            lexical: s.into(),
            datatype: None,
            lang: Some(lang.into()),
        }
    }

    pub fn typed(s: impl Into<String>, datatype: Iri) -> Literal {
        Literal {
            lexical: s.into(),
            datatype: Some(datatype),
            lang: None,
        }
    }

    pub fn integer(v: i64) -> Literal {
        Literal::typed(v.to_string(), Iri::new(vocab::XSD_INTEGER))
    }

    pub fn decimal(v: f64) -> Literal {
        Literal::typed(format!("{v}"), Iri::new(vocab::XSD_DECIMAL))
    }

    pub fn boolean(v: bool) -> Literal {
        Literal::typed(v.to_string(), Iri::new(vocab::XSD_BOOLEAN))
    }
}

/// A node in subject or object position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    Iri(Iri),
    Blank(String),
    Literal(Literal),
}

impl Term {
    pub fn iri(s: impl Into<String>) -> Term {
        Term::Iri(Iri::new(s))
    }

    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }
}

/// A single RDF triple. Subjects are IRIs or blank nodes (encoded as
/// [`Term`], literals in subject position are rejected by the parser and
/// debug-asserted here).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Iri,
    pub object: Term,
}

impl Triple {
    pub fn new(subject: Term, predicate: Iri, object: Term) -> Triple {
        debug_assert!(
            !matches!(subject, Term::Literal(_)),
            "literal in subject position"
        );
        Triple {
            subject,
            predicate,
            object,
        }
    }
}

/// Prefix table (`@prefix` declarations).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixMap {
    map: BTreeMap<String, String>,
}

impl PrefixMap {
    pub fn new() -> PrefixMap {
        PrefixMap::default()
    }

    /// A map preloaded with the standard rdf/rdfs/owl/xsd/dc prefixes.
    pub fn standard() -> PrefixMap {
        let mut p = PrefixMap::new();
        p.insert("rdf", vocab::RDF_NS);
        p.insert("rdfs", vocab::RDFS_NS);
        p.insert("owl", vocab::OWL_NS);
        p.insert("xsd", vocab::XSD_NS);
        p.insert("dc", vocab::DC_NS);
        p
    }

    pub fn insert(&mut self, prefix: impl Into<String>, ns: impl Into<String>) {
        self.map.insert(prefix.into(), ns.into());
    }

    pub fn expand(&self, prefix: &str, local: &str) -> Option<Iri> {
        self.map
            .get(prefix)
            .map(|ns| Iri::new(format!("{ns}{local}")))
    }

    /// Find `(prefix, local)` for an IRI if some namespace matches.
    pub fn compress<'a>(&self, iri: &'a Iri) -> Option<(String, &'a str)> {
        let s = iri.as_str();
        // Longest-namespace match wins so nested namespaces compress sanely.
        let mut best: Option<(&String, &String)> = None;
        for (p, ns) in &self.map {
            if s.starts_with(ns.as_str()) {
                match best {
                    Some((_, bns)) if bns.len() >= ns.len() => {}
                    _ => best = Some((p, ns)),
                }
            }
        }
        let (p, ns) = best?;
        let local = &s[ns.len()..];
        // Only compress when the remainder is a sane local name.
        if local.is_empty()
            || !local
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            return None;
        }
        Some((p.clone(), local))
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &String)> {
        self.map.iter()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A bag of triples plus prefix declarations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    pub prefixes: PrefixMap,
    triples: Vec<Triple>,
}

impl Graph {
    pub fn new() -> Graph {
        Graph {
            prefixes: PrefixMap::standard(),
            triples: Vec::new(),
        }
    }

    pub fn insert(&mut self, t: Triple) {
        self.triples.push(t);
    }

    pub fn add(&mut self, s: Term, p: impl Into<Iri>, o: Term) {
        self.insert(Triple::new(s, p.into(), o));
    }

    pub fn len(&self) -> usize {
        self.triples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// All triples with the given predicate.
    pub fn with_predicate<'a>(&'a self, p: &'a str) -> impl Iterator<Item = &'a Triple> + 'a {
        self.triples
            .iter()
            .filter(move |t| t.predicate.as_str() == p)
    }

    /// All objects of `(subject, predicate, ?)`.
    pub fn objects_of<'a>(
        &'a self,
        subject: &'a Term,
        predicate: &'a str,
    ) -> impl Iterator<Item = &'a Term> + 'a {
        self.triples
            .iter()
            .filter(move |t| &t.subject == subject && t.predicate.as_str() == predicate)
            .map(|t| &t.object)
    }

    /// Subjects declared `rdf:type` of `class_iri`.
    pub fn instances_of<'a>(&'a self, class_iri: &'a str) -> impl Iterator<Item = &'a Term> + 'a {
        self.triples
            .iter()
            .filter(move |t| {
                t.predicate.as_str() == vocab::RDF_TYPE
                    && t.object.as_iri().map(|i| i.as_str()) == Some(class_iri)
            })
            .map(|t| &t.subject)
    }

    /// Deduplicate triples (stable order of first occurrence).
    pub fn dedup(&mut self) {
        let mut seen = BTreeSet::new();
        self.triples.retain(|t| seen.insert(t.clone()));
    }

    /// Merge another graph into this one (prefixes of `other` win on clash),
    /// deduplicating afterwards. This is the mechanical core of the NeOn
    /// *integration* activity.
    pub fn merge(&mut self, other: &Graph) {
        for (p, ns) in other.prefixes.iter() {
            self.prefixes.insert(p.clone(), ns.clone());
        }
        self.triples.extend(other.triples.iter().cloned());
        self.dedup();
    }
}

/// The kind of a named entity in the ontology view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntityKind {
    Class,
    ObjectProperty,
    DatatypeProperty,
    AnnotationProperty,
    Individual,
}

/// An OWL-flavoured read view over a [`Graph`]: entity sets, annotations and
/// the subclass hierarchy, which is what the assessment metrics consume.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    /// The ontology IRI (subject of `rdf:type owl:Ontology`), if declared.
    pub iri: Option<Iri>,
    pub classes: BTreeSet<Iri>,
    pub object_properties: BTreeSet<Iri>,
    pub datatype_properties: BTreeSet<Iri>,
    pub annotation_properties: BTreeSet<Iri>,
    pub individuals: BTreeSet<Iri>,
    /// `rdfs:label` values per entity.
    pub labels: BTreeMap<Iri, Vec<Literal>>,
    /// `rdfs:comment` values per entity.
    pub comments: BTreeMap<Iri, Vec<Literal>>,
    /// Direct subclass edges (sub → supers).
    pub subclass_of: BTreeMap<Iri, BTreeSet<Iri>>,
    /// `owl:imports` targets.
    pub imports: BTreeSet<Iri>,
    /// The underlying graph.
    pub graph: Graph,
}

impl Ontology {
    /// Build the view from a graph.
    pub fn from_graph(graph: Graph) -> Ontology {
        let mut o = Ontology {
            graph,
            ..Ontology::default()
        };

        for t in o.graph.triples() {
            let Some(subj) = t.subject.as_iri().cloned() else {
                continue;
            };
            match t.predicate.as_str() {
                vocab::RDF_TYPE => {
                    if let Some(ty) = t.object.as_iri() {
                        match ty.as_str() {
                            vocab::OWL_ONTOLOGY => o.iri = Some(subj.clone()),
                            vocab::OWL_CLASS | vocab::RDFS_CLASS => {
                                o.classes.insert(subj.clone());
                            }
                            vocab::OWL_OBJECT_PROPERTY => {
                                o.object_properties.insert(subj.clone());
                            }
                            vocab::OWL_DATATYPE_PROPERTY => {
                                o.datatype_properties.insert(subj.clone());
                            }
                            vocab::OWL_ANNOTATION_PROPERTY => {
                                o.annotation_properties.insert(subj.clone());
                            }
                            vocab::OWL_NAMED_INDIVIDUAL => {
                                o.individuals.insert(subj.clone());
                            }
                            _ => {
                                // typed with a domain class: an individual
                                if !ty.as_str().starts_with(vocab::OWL_NS)
                                    && !ty.as_str().starts_with(vocab::RDFS_NS)
                                    && !ty.as_str().starts_with(vocab::RDF_NS)
                                {
                                    o.individuals.insert(subj.clone());
                                }
                            }
                        }
                    }
                }
                vocab::RDFS_SUBCLASS_OF => {
                    if let Some(sup) = t.object.as_iri() {
                        o.classes.insert(subj.clone());
                        o.classes.insert(sup.clone());
                        o.subclass_of
                            .entry(subj.clone())
                            .or_default()
                            .insert(sup.clone());
                    }
                }
                vocab::RDFS_LABEL => {
                    if let Some(l) = t.object.as_literal() {
                        o.labels.entry(subj.clone()).or_default().push(l.clone());
                    }
                }
                vocab::RDFS_COMMENT => {
                    if let Some(l) = t.object.as_literal() {
                        o.comments.entry(subj.clone()).or_default().push(l.clone());
                    }
                }
                vocab::OWL_IMPORTS => {
                    if let Some(i) = t.object.as_iri() {
                        o.imports.insert(i.clone());
                    }
                }
                _ => {}
            }
        }
        // Individuals typed by a declared class shouldn't also count as
        // classes; classes win on conflict.
        o.individuals = &o.individuals - &o.classes;
        o
    }

    /// All named entities with their kinds.
    pub fn entities(&self) -> Vec<(Iri, EntityKind)> {
        let mut out = Vec::new();
        out.extend(self.classes.iter().cloned().map(|i| (i, EntityKind::Class)));
        out.extend(
            self.object_properties
                .iter()
                .cloned()
                .map(|i| (i, EntityKind::ObjectProperty)),
        );
        out.extend(
            self.datatype_properties
                .iter()
                .cloned()
                .map(|i| (i, EntityKind::DatatypeProperty)),
        );
        out.extend(
            self.annotation_properties
                .iter()
                .cloned()
                .map(|i| (i, EntityKind::AnnotationProperty)),
        );
        out.extend(
            self.individuals
                .iter()
                .cloned()
                .map(|i| (i, EntityKind::Individual)),
        );
        out
    }

    pub fn num_entities(&self) -> usize {
        self.classes.len()
            + self.object_properties.len()
            + self.datatype_properties.len()
            + self.annotation_properties.len()
            + self.individuals.len()
    }

    /// Direct superclasses of `class`.
    pub fn superclasses(&self, class: &Iri) -> impl Iterator<Item = &Iri> {
        self.subclass_of.get(class).into_iter().flatten()
    }

    /// First label of an entity, if any.
    pub fn label(&self, e: &Iri) -> Option<&str> {
        self.labels
            .get(e)
            .and_then(|v| v.first())
            .map(|l| l.lexical.as_str())
    }

    /// First comment of an entity, if any.
    pub fn comment(&self, e: &Iri) -> Option<&str> {
        self.comments
            .get(e)
            .and_then(|v| v.first())
            .map(|l| l.lexical.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(s)
    }

    #[test]
    fn iri_local_name_variants() {
        assert_eq!(iri("http://ex.org/onto#Video").local_name(), "Video");
        assert_eq!(iri("http://ex.org/onto/Video").local_name(), "Video");
        assert_eq!(iri("urn:x:Video").local_name(), "Video");
        assert_eq!(iri("Video").local_name(), "Video");
    }

    #[test]
    fn iri_namespace_variants() {
        assert_eq!(
            iri("http://ex.org/onto#Video").namespace(),
            "http://ex.org/onto#"
        );
        assert_eq!(
            iri("http://ex.org/onto/Video").namespace(),
            "http://ex.org/onto/"
        );
        assert_eq!(iri("Video").namespace(), "");
    }

    #[test]
    fn prefix_expand_and_compress_roundtrip() {
        let p = PrefixMap::standard();
        let i = p.expand("owl", "Class").unwrap();
        assert_eq!(i.as_str(), vocab::OWL_CLASS);
        let (pref, local) = p.compress(&i).unwrap();
        assert_eq!(pref, "owl");
        assert_eq!(local, "Class");
    }

    #[test]
    fn compress_rejects_odd_locals() {
        let mut p = PrefixMap::new();
        p.insert("ex", "http://ex.org/");
        assert!(p.compress(&iri("http://ex.org/a b")).is_none());
        assert!(p.compress(&iri("http://ex.org/")).is_none());
        assert!(p.compress(&iri("http://other.org/x")).is_none());
    }

    #[test]
    fn compress_prefers_longest_namespace() {
        let mut p = PrefixMap::new();
        p.insert("a", "http://ex.org/");
        p.insert("b", "http://ex.org/deep/");
        let deep = iri("http://ex.org/deep/Thing");
        let (pref, local) = p.compress(&deep).unwrap();
        assert_eq!(pref, "b");
        assert_eq!(local, "Thing");
    }

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.prefixes.insert("ex", "http://ex.org/mm#");
        let ont = Term::iri("http://ex.org/mm");
        g.add(ont.clone(), vocab::RDF_TYPE, Term::iri(vocab::OWL_ONTOLOGY));
        g.add(ont, vocab::OWL_IMPORTS, Term::iri("http://ex.org/base"));
        let video = Term::iri("http://ex.org/mm#Video");
        let media = Term::iri("http://ex.org/mm#Media");
        g.add(video.clone(), vocab::RDF_TYPE, Term::iri(vocab::OWL_CLASS));
        g.add(media.clone(), vocab::RDF_TYPE, Term::iri(vocab::OWL_CLASS));
        g.add(video.clone(), vocab::RDFS_SUBCLASS_OF, media.clone());
        g.add(
            video.clone(),
            vocab::RDFS_LABEL,
            Term::Literal(Literal::plain("Video")),
        );
        g.add(
            video.clone(),
            vocab::RDFS_COMMENT,
            Term::Literal(Literal::lang_tagged("A moving image.", "en")),
        );
        let dur = Term::iri("http://ex.org/mm#duration");
        g.add(
            dur,
            vocab::RDF_TYPE,
            Term::iri(vocab::OWL_DATATYPE_PROPERTY),
        );
        let depicts = Term::iri("http://ex.org/mm#depicts");
        g.add(
            depicts,
            vocab::RDF_TYPE,
            Term::iri(vocab::OWL_OBJECT_PROPERTY),
        );
        let clip = Term::iri("http://ex.org/mm#clip1");
        g.add(clip, vocab::RDF_TYPE, video.clone());
        g
    }

    #[test]
    fn ontology_view_classifies_entities() {
        let o = Ontology::from_graph(sample_graph());
        assert_eq!(o.iri.as_ref().unwrap().as_str(), "http://ex.org/mm");
        assert_eq!(o.classes.len(), 2);
        assert_eq!(o.object_properties.len(), 1);
        assert_eq!(o.datatype_properties.len(), 1);
        assert_eq!(o.individuals.len(), 1);
        assert_eq!(o.imports.len(), 1);
        assert_eq!(o.num_entities(), 5);
    }

    #[test]
    fn ontology_view_annotations() {
        let o = Ontology::from_graph(sample_graph());
        let video = iri("http://ex.org/mm#Video");
        assert_eq!(o.label(&video), Some("Video"));
        assert_eq!(o.comment(&video), Some("A moving image."));
        assert_eq!(o.label(&iri("http://ex.org/mm#Media")), None);
    }

    #[test]
    fn subclass_edges_recorded() {
        let o = Ontology::from_graph(sample_graph());
        let video = iri("http://ex.org/mm#Video");
        let supers: Vec<_> = o.superclasses(&video).collect();
        assert_eq!(supers.len(), 1);
        assert_eq!(supers[0].as_str(), "http://ex.org/mm#Media");
    }

    #[test]
    fn subclass_infers_classes_without_declaration() {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://e/A"),
            vocab::RDFS_SUBCLASS_OF,
            Term::iri("http://e/B"),
        );
        let o = Ontology::from_graph(g);
        assert_eq!(o.classes.len(), 2);
    }

    #[test]
    fn graph_merge_dedups() {
        let g1 = sample_graph();
        let mut g2 = sample_graph();
        let before = g1.len();
        g2.merge(&g1);
        assert_eq!(g2.len(), before, "identical merge must not grow the graph");
    }

    #[test]
    fn graph_queries() {
        let g = sample_graph();
        let video = Term::iri("http://ex.org/mm#Video");
        assert_eq!(g.objects_of(&video, vocab::RDFS_LABEL).count(), 1);
        assert_eq!(g.instances_of("http://ex.org/mm#Video").count(), 1);
        assert_eq!(g.with_predicate(vocab::RDF_TYPE).count(), 6);
    }

    #[test]
    fn literal_constructors() {
        assert_eq!(Literal::integer(3).lexical, "3");
        assert_eq!(Literal::boolean(true).lexical, "true");
        assert!(Literal::decimal(0.5)
            .datatype
            .unwrap()
            .as_str()
            .ends_with("decimal"));
        let l = Literal::lang_tagged("hi", "en");
        assert_eq!(l.lang.as_deref(), Some("en"));
    }
}
