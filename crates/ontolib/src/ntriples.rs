//! N-Triples support: the line-oriented exchange format many ontology
//! registries serve alongside Turtle. One triple per line, fully expanded
//! IRIs, no prefixes — trivially streamable and diffable, which makes it the
//! right interchange format for corpus snapshots in tests and benchmarks.

use crate::model::{Graph, Iri, Literal, Term, Triple};
use crate::turtle::TurtleError;
use crate::vocab;
use std::fmt::Write as _;

/// Serialize a graph as N-Triples (one line per triple, `.`-terminated).
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.triples() {
        let _ = writeln!(
            out,
            "{} {} {} .",
            render_term(&t.subject),
            format_args!("<{}>", t.predicate.as_str()),
            render_term(&t.object)
        );
    }
    out
}

fn render_term(t: &Term) -> String {
    match t {
        Term::Iri(i) => format!("<{}>", i.as_str()),
        Term::Blank(b) => format!("_:{b}"),
        Term::Literal(l) => {
            let escaped = escape(&l.lexical);
            match (&l.lang, &l.datatype) {
                (Some(lang), _) => format!("\"{escaped}\"@{lang}"),
                (None, Some(dt)) => format!("\"{escaped}\"^^<{}>", dt.as_str()),
                (None, None) => format!("\"{escaped}\""),
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Parse an N-Triples document. Reuses the Turtle machinery: N-Triples is a
/// syntactic subset of Turtle, so every valid document parses identically;
/// this wrapper only adds the line-oriented error reporting contract.
pub fn parse_ntriples(src: &str) -> Result<Graph, TurtleError> {
    // Validate the line discipline first for precise diagnostics.
    for (ln, line) in src.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !trimmed.ends_with('.') {
            return Err(TurtleError::new(
                ln + 1,
                line.len().max(1),
                "line must end with '.'",
            ));
        }
    }
    let mut g = crate::turtle::parse_turtle(src)?;
    // N-Triples documents carry no prefixes of their own.
    g.prefixes = crate::model::PrefixMap::standard();
    Ok(g)
}

/// Convenience: a triple with IRI subject/object.
pub fn iri_triple(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Iri::new(p), Term::iri(o))
}

/// Convenience: a labelled-literal triple.
pub fn label_triple(s: &str, label: &str) -> Triple {
    Triple::new(
        Term::iri(s),
        Iri::new(vocab::RDFS_LABEL),
        Term::Literal(Literal::plain(label)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, OntologyGenerator};

    fn sorted(g: &Graph) -> Vec<Triple> {
        let mut v = g.triples().to_vec();
        v.sort();
        v
    }

    #[test]
    fn roundtrip_generated_graph() {
        let g = OntologyGenerator::new(GeneratorConfig {
            num_classes: 20,
            seed: 13,
            ..GeneratorConfig::default()
        })
        .generate_graph();
        let text = write_ntriples(&g);
        let back = parse_ntriples(&text).expect("valid N-Triples");
        assert_eq!(sorted(&g), sorted(&back));
    }

    #[test]
    fn one_line_per_triple() {
        let mut g = Graph::new();
        g.insert(iri_triple("http://e/A", vocab::RDF_TYPE, vocab::OWL_CLASS));
        g.insert(label_triple("http://e/A", "The A"));
        let text = write_ntriples(&g);
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.ends_with(" .")));
        assert!(!text.contains("@prefix"));
    }

    #[test]
    fn literals_with_escapes_and_tags() {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://e/A"),
            "http://e/p",
            Term::Literal(Literal::lang_tagged("line\n\"quote\"", "en")),
        );
        g.add(
            Term::iri("http://e/A"),
            "http://e/q",
            Term::Literal(Literal::typed("42", Iri::new(vocab::XSD_INTEGER))),
        );
        let text = write_ntriples(&g);
        let back = parse_ntriples(&text).expect("valid");
        assert_eq!(sorted(&g), sorted(&back));
    }

    #[test]
    fn missing_dot_is_reported_with_line() {
        let err = parse_ntriples("<http://e/A> <http://e/p> <http://e/B>").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("end with '.'"));
    }

    #[test]
    fn comments_and_blanks_allowed() {
        let g =
            parse_ntriples("# snapshot 2012-04-02\n\n<http://e/A> <http://e/p> <http://e/B> .\n")
                .expect("valid");
        assert_eq!(g.len(), 1);
    }
}
