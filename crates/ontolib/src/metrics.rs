//! Structural metrics over an [`Ontology`], feeding the *understandability*
//! criteria of the NeOn reuse assessment (documentation quality and code
//! clarity are functions of annotation coverage and structural regularity).

use crate::model::{Iri, Ontology};
use std::collections::{BTreeMap, BTreeSet};

/// Aggregate structural metrics of one ontology.
#[derive(Debug, Clone, PartialEq)]
pub struct OntologyMetrics {
    pub num_classes: usize,
    pub num_object_properties: usize,
    pub num_datatype_properties: usize,
    pub num_individuals: usize,
    pub num_triples: usize,
    /// Longest `rdfs:subClassOf` chain (0 for a flat ontology).
    pub hierarchy_depth: usize,
    /// Mean number of direct subclasses per non-leaf class.
    pub mean_branching: f64,
    /// Share of named entities (classes + properties) carrying an
    /// `rdfs:label`.
    pub label_coverage: f64,
    /// Share of named entities carrying an `rdfs:comment`.
    pub comment_coverage: f64,
    /// Classes with no superclass and no subclasses (structure islands).
    pub orphan_classes: usize,
    /// Number of `owl:imports`.
    pub num_imports: usize,
}

impl OntologyMetrics {
    /// Compute all metrics for an ontology.
    pub fn compute(o: &Ontology) -> OntologyMetrics {
        let schema_entities: Vec<&Iri> = o
            .classes
            .iter()
            .chain(o.object_properties.iter())
            .chain(o.datatype_properties.iter())
            .collect();
        let n_schema = schema_entities.len();
        let labeled = schema_entities
            .iter()
            .filter(|e| o.labels.contains_key(**e))
            .count();
        let commented = schema_entities
            .iter()
            .filter(|e| o.comments.contains_key(**e))
            .count();

        let (depth, mean_branching, orphans) = hierarchy_shape(o);

        OntologyMetrics {
            num_classes: o.classes.len(),
            num_object_properties: o.object_properties.len(),
            num_datatype_properties: o.datatype_properties.len(),
            num_individuals: o.individuals.len(),
            num_triples: o.graph.len(),
            hierarchy_depth: depth,
            mean_branching,
            label_coverage: ratio(labeled, n_schema),
            comment_coverage: ratio(commented, n_schema),
            orphan_classes: orphans,
            num_imports: o.imports.len(),
        }
    }

    /// A single "documentation density" figure in `[0,1]`: the mean of label
    /// and comment coverage. Used as the measurable proxy for the paper's
    /// *documentation quality* / *code clarity* judgments.
    pub fn documentation_density(&self) -> f64 {
        (self.label_coverage + self.comment_coverage) / 2.0
    }

    /// Schema size (classes + properties), the usual "ontology size" figure.
    pub fn schema_size(&self) -> usize {
        self.num_classes + self.num_object_properties + self.num_datatype_properties
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Depth (longest chain), mean branching over non-leaf classes, orphan count.
fn hierarchy_shape(o: &Ontology) -> (usize, f64, usize) {
    // children map: super -> subs
    let mut children: BTreeMap<&Iri, Vec<&Iri>> = BTreeMap::new();
    for (sub, supers) in &o.subclass_of {
        for sup in supers {
            children.entry(sup).or_default().push(sub);
        }
    }
    // Depth via memoized DFS from roots, guarding against cycles.
    fn depth_of<'a>(
        class: &'a Iri,
        o: &'a Ontology,
        memo: &mut BTreeMap<&'a Iri, usize>,
        visiting: &mut BTreeSet<&'a Iri>,
    ) -> usize {
        if let Some(&d) = memo.get(class) {
            return d;
        }
        if !visiting.insert(class) {
            return 0; // cycle: treat as depth 0 rather than recursing forever
        }
        let d = o
            .subclass_of
            .get(class)
            .into_iter()
            .flatten()
            .map(|sup| 1 + depth_of(sup, o, memo, visiting))
            .max()
            .unwrap_or(0);
        visiting.remove(class);
        memo.insert(class, d);
        d
    }
    let mut memo = BTreeMap::new();
    let mut visiting = BTreeSet::new();
    let depth = o
        .classes
        .iter()
        .map(|c| depth_of(c, o, &mut memo, &mut visiting))
        .max()
        .unwrap_or(0);

    let non_leaf = children.len();
    let total_children: usize = children.values().map(|v| v.len()).sum();
    let mean_branching = if non_leaf == 0 {
        0.0
    } else {
        total_children as f64 / non_leaf as f64
    };

    let orphans = o
        .classes
        .iter()
        .filter(|c| !o.subclass_of.contains_key(*c) && !children.contains_key(*c))
        .count();

    (depth, mean_branching, orphans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Graph, Literal, Term};
    use crate::vocab;

    fn class(g: &mut Graph, iri: &str) -> Term {
        let t = Term::iri(iri);
        g.add(t.clone(), vocab::RDF_TYPE, Term::iri(vocab::OWL_CLASS));
        t
    }

    fn chain_graph() -> Graph {
        // A <- B <- C (C subclass of B subclass of A), plus orphan D
        let mut g = Graph::new();
        let a = class(&mut g, "http://e/A");
        let b = class(&mut g, "http://e/B");
        let c = class(&mut g, "http://e/C");
        let _d = class(&mut g, "http://e/D");
        g.add(b.clone(), vocab::RDFS_SUBCLASS_OF, a.clone());
        g.add(c.clone(), vocab::RDFS_SUBCLASS_OF, b.clone());
        g.add(
            a.clone(),
            vocab::RDFS_LABEL,
            Term::Literal(Literal::plain("A")),
        );
        g.add(
            a,
            vocab::RDFS_COMMENT,
            Term::Literal(Literal::plain("root")),
        );
        g.add(b, vocab::RDFS_LABEL, Term::Literal(Literal::plain("B")));
        g
    }

    #[test]
    fn counts_and_depth() {
        let o = Ontology::from_graph(chain_graph());
        let m = OntologyMetrics::compute(&o);
        assert_eq!(m.num_classes, 4);
        assert_eq!(m.hierarchy_depth, 2);
        assert_eq!(m.orphan_classes, 1);
        assert_eq!(m.schema_size(), 4);
    }

    #[test]
    fn coverage_ratios() {
        let o = Ontology::from_graph(chain_graph());
        let m = OntologyMetrics::compute(&o);
        assert!((m.label_coverage - 0.5).abs() < 1e-12); // 2 of 4
        assert!((m.comment_coverage - 0.25).abs() < 1e-12); // 1 of 4
        assert!((m.documentation_density() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn branching_factor() {
        // A with two children B, C.
        let mut g = Graph::new();
        let a = class(&mut g, "http://e/A");
        let b = class(&mut g, "http://e/B");
        let c = class(&mut g, "http://e/C");
        g.add(b, vocab::RDFS_SUBCLASS_OF, a.clone());
        g.add(c, vocab::RDFS_SUBCLASS_OF, a);
        let m = OntologyMetrics::compute(&Ontology::from_graph(g));
        assert!((m.mean_branching - 2.0).abs() < 1e-12);
        assert_eq!(m.hierarchy_depth, 1);
        assert_eq!(m.orphan_classes, 0);
    }

    #[test]
    fn cycle_does_not_hang() {
        let mut g = Graph::new();
        let a = class(&mut g, "http://e/A");
        let b = class(&mut g, "http://e/B");
        g.add(a.clone(), vocab::RDFS_SUBCLASS_OF, b.clone());
        g.add(b, vocab::RDFS_SUBCLASS_OF, a);
        let m = OntologyMetrics::compute(&Ontology::from_graph(g));
        // Depth is defined (bounded) despite the cycle.
        assert!(m.hierarchy_depth <= 2);
    }

    #[test]
    fn empty_ontology_is_all_zero() {
        let m = OntologyMetrics::compute(&Ontology::from_graph(Graph::new()));
        assert_eq!(m.num_classes, 0);
        assert_eq!(m.hierarchy_depth, 0);
        assert_eq!(m.label_coverage, 0.0);
        assert_eq!(m.documentation_density(), 0.0);
    }
}
