//! RDF / RDFS / OWL / XSD / Dublin Core vocabulary constants used by the
//! parser, the ontology view and the synthetic generator.

pub const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
pub const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
pub const OWL_NS: &str = "http://www.w3.org/2002/07/owl#";
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema#";
pub const DC_NS: &str = "http://purl.org/dc/elements/1.1/";

pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

pub const RDFS_CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
pub const RDFS_SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
pub const RDFS_COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
pub const RDFS_SEE_ALSO: &str = "http://www.w3.org/2000/01/rdf-schema#seeAlso";
pub const RDFS_IS_DEFINED_BY: &str = "http://www.w3.org/2000/01/rdf-schema#isDefinedBy";

pub const OWL_ONTOLOGY: &str = "http://www.w3.org/2002/07/owl#Ontology";
pub const OWL_CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
pub const OWL_OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
pub const OWL_DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
pub const OWL_ANNOTATION_PROPERTY: &str = "http://www.w3.org/2002/07/owl#AnnotationProperty";
pub const OWL_NAMED_INDIVIDUAL: &str = "http://www.w3.org/2002/07/owl#NamedIndividual";
pub const OWL_IMPORTS: &str = "http://www.w3.org/2002/07/owl#imports";
pub const OWL_VERSION_INFO: &str = "http://www.w3.org/2002/07/owl#versionInfo";

pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";

pub const DC_TITLE: &str = "http://purl.org/dc/elements/1.1/title";
pub const DC_CREATOR: &str = "http://purl.org/dc/elements/1.1/creator";
pub const DC_DESCRIPTION: &str = "http://purl.org/dc/elements/1.1/description";

/// Namespaces that count as "taken from a given standard" for the *adequacy
/// of naming conventions* criterion (the paper names W3C and MPEG-7 as
/// examples of standards whose terms score *high*).
pub const STANDARD_NAMESPACES: &[&str] = &[
    "http://www.w3.org/",
    "http://purl.org/dc/",
    "http://mpeg7.org/",
    "urn:mpeg:mpeg7:",
    "http://xmlns.com/foaf/",
    "http://www.w3.org/ns/ma-ont#",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_in_their_namespaces() {
        assert!(RDF_TYPE.starts_with(RDF_NS));
        assert!(RDFS_LABEL.starts_with(RDFS_NS));
        assert!(OWL_CLASS.starts_with(OWL_NS));
        assert!(XSD_INTEGER.starts_with(XSD_NS));
        assert!(DC_TITLE.starts_with(DC_NS));
    }

    #[test]
    fn standard_namespaces_include_w3c() {
        assert!(STANDARD_NAMESPACES.iter().any(|ns| ns.contains("w3.org")));
        assert!(STANDARD_NAMESPACES.iter().any(|ns| ns.contains("mpeg")));
    }
}
