//! Seeded synthetic-ontology generator.
//!
//! The paper's 23 candidate multimedia ontologies are not redistributable;
//! the generator produces corpora with *controlled* characteristics
//! (size, documentation coverage, naming style, standard-vocabulary reuse,
//! topic vocabulary) so that the automated assessor and the full selection
//! pipeline can be exercised end-to-end and benchmarked at any scale.

use crate::model::{Graph, Iri, Literal, Ontology, Term, Triple};
use crate::naming::NamingStyle;
use crate::vocab;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Topic vocabularies for class-name generation.
pub const MULTIMEDIA_TERMS: &[&str] = &[
    "video",
    "audio",
    "image",
    "segment",
    "track",
    "frame",
    "shot",
    "scene",
    "media",
    "stream",
    "codec",
    "annotation",
    "descriptor",
    "region",
    "still",
    "moving",
    "visual",
    "aural",
    "text",
    "caption",
    "subtitle",
    "channel",
    "sample",
    "rate",
    "duration",
    "resolution",
    "format",
    "container",
    "decomposition",
    "locator",
    "agent",
    "creator",
    "genre",
    "rating",
    "license",
    "collection",
    "album",
    "recording",
    "performance",
    "broadcast",
];

pub const GENERIC_TERMS: &[&str] = &[
    "thing",
    "entity",
    "object",
    "item",
    "element",
    "component",
    "unit",
    "part",
    "group",
    "set",
    "relation",
    "process",
    "event",
    "state",
    "quality",
    "role",
    "function",
    "attribute",
];

/// Dials of the generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Ontology IRI namespace, e.g. `http://example.org/onto#`.
    pub namespace: String,
    pub num_classes: usize,
    pub num_object_properties: usize,
    pub num_datatype_properties: usize,
    pub num_individuals: usize,
    /// Probability that an entity gets an `rdfs:label`.
    pub label_prob: f64,
    /// Probability that an entity gets an `rdfs:comment`.
    pub comment_prob: f64,
    /// Dominant naming style of classes (properties always mirror it with
    /// the lower-case variant, matching OWL practice).
    pub style: NamingStyle,
    /// Probability that an entity *deviates* from the dominant style
    /// (0 = perfectly consistent naming).
    pub style_noise: f64,
    /// Share of classes drawn from a standard namespace (W3C Media
    /// Ontology), driving the *naming conventions = high* signal.
    pub standard_share: f64,
    /// Probability an entity name is an opaque code (`C017`) instead of a
    /// word combination, driving wordiness down.
    pub opaque_prob: f64,
    /// Topic vocabulary to draw words from.
    pub theme: Vec<String>,
    /// Max subclass chain depth.
    pub max_depth: usize,
    /// RNG seed — equal configs with equal seeds generate identical graphs.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            namespace: "http://example.org/gen#".to_string(),
            num_classes: 30,
            num_object_properties: 10,
            num_datatype_properties: 8,
            num_individuals: 5,
            label_prob: 0.8,
            comment_prob: 0.5,
            style: NamingStyle::UpperCamel,
            style_noise: 0.0,
            standard_share: 0.0,
            opaque_prob: 0.0,
            theme: MULTIMEDIA_TERMS.iter().map(|s| s.to_string()).collect(),
            max_depth: 4,
            seed: 42,
        }
    }
}

/// The generator itself; [`OntologyGenerator::generate`] is deterministic in
/// the config (including its seed).
#[derive(Debug, Clone)]
pub struct OntologyGenerator {
    pub config: GeneratorConfig,
}

impl OntologyGenerator {
    pub fn new(config: GeneratorConfig) -> OntologyGenerator {
        OntologyGenerator { config }
    }

    /// Generate the graph and its ontology view.
    pub fn generate(&self) -> Ontology {
        Ontology::from_graph(self.generate_graph())
    }

    /// Generate the raw triple graph.
    pub fn generate_graph(&self) -> Graph {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let mut g = Graph::new();
        g.prefixes.insert("", c.namespace.clone());
        g.prefixes.insert("ma", "http://www.w3.org/ns/ma-ont#");

        let onto_iri = c.namespace.trim_end_matches(['#', '/']).to_string();
        g.add(
            Term::iri(&onto_iri),
            vocab::RDF_TYPE,
            Term::iri(vocab::OWL_ONTOLOGY),
        );
        g.add(
            Term::iri(&onto_iri),
            vocab::OWL_VERSION_INFO,
            Term::Literal(Literal::plain("1.0")),
        );

        // ---- classes ----
        let mut classes: Vec<Iri> = Vec::with_capacity(c.num_classes);
        let mut used = std::collections::BTreeSet::new();
        for i in 0..c.num_classes {
            let standard = rng.random::<f64>() < c.standard_share;
            let name = self.fresh_name(&mut rng, &mut used, true, i);
            let iri = if standard {
                Iri::new(format!("http://www.w3.org/ns/ma-ont#{name}"))
            } else {
                Iri::new(format!("{}{}", c.namespace, name))
            };
            g.add(
                Term::Iri(iri.clone()),
                vocab::RDF_TYPE,
                Term::iri(vocab::OWL_CLASS),
            );
            self.maybe_annotate(&mut rng, &mut g, &iri, &name);
            classes.push(iri);
        }

        // ---- subclass hierarchy: attach each class (after the first) to a
        // random earlier class whose depth allows growth ----
        let mut depth = vec![0usize; classes.len()];
        for i in 1..classes.len() {
            let parent = rng.random_range(0..i);
            if depth[parent] < c.max_depth {
                depth[i] = depth[parent] + 1;
                g.add(
                    Term::Iri(classes[i].clone()),
                    vocab::RDFS_SUBCLASS_OF,
                    Term::Iri(classes[parent].clone()),
                );
            }
        }

        // ---- properties ----
        for i in 0..c.num_object_properties {
            let name = self.fresh_name(&mut rng, &mut used, false, i);
            let iri = Iri::new(format!("{}{}", c.namespace, name));
            g.add(
                Term::Iri(iri.clone()),
                vocab::RDF_TYPE,
                Term::iri(vocab::OWL_OBJECT_PROPERTY),
            );
            if !classes.is_empty() {
                let d = &classes[rng.random_range(0..classes.len())];
                let r = &classes[rng.random_range(0..classes.len())];
                g.add(
                    Term::Iri(iri.clone()),
                    vocab::RDFS_DOMAIN,
                    Term::Iri(d.clone()),
                );
                g.add(
                    Term::Iri(iri.clone()),
                    vocab::RDFS_RANGE,
                    Term::Iri(r.clone()),
                );
            }
            self.maybe_annotate(&mut rng, &mut g, &iri, &name);
        }
        for i in 0..c.num_datatype_properties {
            let name = self.fresh_name(&mut rng, &mut used, false, i + 1000);
            let iri = Iri::new(format!("{}{}", c.namespace, name));
            g.add(
                Term::Iri(iri.clone()),
                vocab::RDF_TYPE,
                Term::iri(vocab::OWL_DATATYPE_PROPERTY),
            );
            self.maybe_annotate(&mut rng, &mut g, &iri, &name);
        }

        // ---- individuals ----
        for i in 0..c.num_individuals {
            let iri = Iri::new(format!("{}instance{}", c.namespace, i + 1));
            if let Some(cl) = classes.get(rng.random_range(0..classes.len().max(1))) {
                g.add(
                    Term::Iri(iri.clone()),
                    vocab::RDF_TYPE,
                    Term::Iri(cl.clone()),
                );
            }
        }

        g.dedup();
        g
    }

    fn maybe_annotate(&self, rng: &mut StdRng, g: &mut Graph, iri: &Iri, name: &str) {
        let c = &self.config;
        if rng.random::<f64>() < c.label_prob {
            let label = crate::naming::tokenize(name).join(" ");
            let label = if label.is_empty() {
                name.to_string()
            } else {
                label
            };
            g.insert(Triple::new(
                Term::Iri(iri.clone()),
                Iri::new(vocab::RDFS_LABEL),
                Term::Literal(Literal::lang_tagged(label, "en")),
            ));
        }
        if rng.random::<f64>() < c.comment_prob {
            g.insert(Triple::new(
                Term::Iri(iri.clone()),
                Iri::new(vocab::RDFS_COMMENT),
                Term::Literal(Literal::plain(format!(
                    "Represents the concept of {} in this model.",
                    crate::naming::tokenize(name).join(" ")
                ))),
            ));
        }
    }

    fn fresh_name(
        &self,
        rng: &mut StdRng,
        used: &mut std::collections::BTreeSet<String>,
        class_pos: bool,
        salt: usize,
    ) -> String {
        let c = &self.config;
        for _ in 0..100 {
            let name = if rng.random::<f64>() < c.opaque_prob {
                format!(
                    "{}{:03}",
                    if class_pos { "C" } else { "p" },
                    rng.random_range(0..1000)
                )
            } else {
                let w1 = &c.theme[rng.random_range(0..c.theme.len())];
                let w2 = &c.theme[rng.random_range(0..c.theme.len())];
                let style = if rng.random::<f64>() < c.style_noise {
                    // deviate: pick a different style deterministically
                    match c.style {
                        NamingStyle::UpperCamel => NamingStyle::Snake,
                        _ => NamingStyle::UpperCamel,
                    }
                } else {
                    c.style
                };
                compose(w1, w2, style, class_pos)
            };
            if used.insert(name.clone()) {
                return name;
            }
        }
        // Theme exhausted: salt guarantees uniqueness.
        let fallback = format!("Entity{salt}");
        used.insert(fallback.clone());
        fallback
    }
}

fn compose(w1: &str, w2: &str, style: NamingStyle, class_pos: bool) -> String {
    let cap = |w: &str| {
        let mut cs = w.chars();
        match cs.next() {
            Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
            None => String::new(),
        }
    };
    match style {
        NamingStyle::UpperCamel => {
            if class_pos {
                format!("{}{}", cap(w1), cap(w2))
            } else {
                // properties mirror with lowerCamel (`hasX` form)
                format!("has{}{}", cap(w1), cap(w2))
            }
        }
        NamingStyle::LowerCamel => format!("{}{}", w1, cap(w2)),
        NamingStyle::Snake => format!("{w1}_{w2}"),
        NamingStyle::Kebab => format!("{w1}-{w2}"),
        NamingStyle::UpperCase => format!("{}{}", w1.to_uppercase(), w2.to_uppercase()),
        NamingStyle::LowerCase | NamingStyle::Other => format!("{w1}{w2}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OntologyMetrics;
    use crate::naming::NamingReport;

    #[test]
    fn deterministic_for_equal_seed() {
        let cfg = GeneratorConfig::default();
        let a = OntologyGenerator::new(cfg.clone()).generate_graph();
        let b = OntologyGenerator::new(cfg).generate_graph();
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = GeneratorConfig::default();
        let a = OntologyGenerator::new(cfg.clone()).generate_graph();
        cfg.seed = 43;
        let b = OntologyGenerator::new(cfg).generate_graph();
        assert_ne!(a.triples(), b.triples());
    }

    #[test]
    fn respects_entity_counts() {
        let cfg = GeneratorConfig {
            num_classes: 12,
            num_object_properties: 4,
            num_datatype_properties: 3,
            num_individuals: 2,
            ..GeneratorConfig::default()
        };
        let o = OntologyGenerator::new(cfg).generate();
        assert_eq!(o.classes.len(), 12);
        assert_eq!(o.object_properties.len(), 4);
        assert_eq!(o.datatype_properties.len(), 3);
        assert_eq!(o.individuals.len(), 2);
    }

    #[test]
    fn annotation_probabilities_move_coverage() {
        let rich = GeneratorConfig {
            label_prob: 1.0,
            comment_prob: 1.0,
            num_classes: 40,
            ..GeneratorConfig::default()
        };
        let poor = GeneratorConfig {
            label_prob: 0.0,
            comment_prob: 0.0,
            num_classes: 40,
            ..GeneratorConfig::default()
        };
        let m_rich = OntologyMetrics::compute(&OntologyGenerator::new(rich).generate());
        let m_poor = OntologyMetrics::compute(&OntologyGenerator::new(poor).generate());
        assert!(m_rich.documentation_density() > 0.95);
        assert!(m_poor.documentation_density() < 0.05);
    }

    #[test]
    fn standard_share_drives_naming_level_high() {
        let cfg = GeneratorConfig {
            standard_share: 0.8,
            num_classes: 40,
            ..GeneratorConfig::default()
        };
        let o = OntologyGenerator::new(cfg).generate();
        let r = NamingReport::analyze(&o);
        assert!(r.standard_share > 0.3, "share {}", r.standard_share);
    }

    #[test]
    fn opaque_names_lower_wordiness() {
        let clean = GeneratorConfig {
            opaque_prob: 0.0,
            ..GeneratorConfig::default()
        };
        let codes = GeneratorConfig {
            opaque_prob: 1.0,
            ..GeneratorConfig::default()
        };
        let rc = NamingReport::analyze(&OntologyGenerator::new(clean).generate());
        let ro = NamingReport::analyze(&OntologyGenerator::new(codes).generate());
        assert!(rc.wordiness > ro.wordiness);
    }

    #[test]
    fn depth_is_bounded() {
        let cfg = GeneratorConfig {
            max_depth: 2,
            num_classes: 60,
            ..GeneratorConfig::default()
        };
        let o = OntologyGenerator::new(cfg).generate();
        let m = OntologyMetrics::compute(&o);
        assert!(m.hierarchy_depth <= 2, "depth {}", m.hierarchy_depth);
    }

    #[test]
    fn generated_graph_serializes_and_reparses() {
        let o = OntologyGenerator::new(GeneratorConfig::default()).generate_graph();
        let text = crate::turtle::write_turtle(&o);
        let back = crate::turtle::parse_turtle(&text).expect("reparse");
        let mut a = o.triples().to_vec();
        let mut b = back.triples().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
