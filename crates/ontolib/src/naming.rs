//! Identifier-style analysis for the *adequacy of naming conventions*
//! criterion.
//!
//! The paper (Section II) scores naming conventions as *low* "if the names
//! are not intuitive", *medium* "if they are clearly understandable" and
//! *high* "if they are taken from a given standard (e.g. W3C, MPEG7)".
//! Mechanically we measure: (a) how consistently entity local names follow a
//! single casing convention, (b) whether names tokenize into dictionary-like
//! words rather than opaque codes, and (c) how many entities live in (or
//! reference) standard namespaces.

use crate::model::{Iri, Ontology};
use crate::vocab;
use std::collections::BTreeMap;

/// Casing convention of a single identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NamingStyle {
    /// `VideoSegment`
    UpperCamel,
    /// `hasDuration`
    LowerCamel,
    /// `video_segment`
    Snake,
    /// `video-segment`
    Kebab,
    /// `VIDEO` / `MPEG7`
    UpperCase,
    /// `video`
    LowerCase,
    /// digits-only, mixed separators, empty, …
    Other,
}

/// Classify one identifier's style.
pub fn classify(name: &str) -> NamingStyle {
    if name.is_empty() {
        return NamingStyle::Other;
    }
    let has_underscore = name.contains('_');
    let has_dash = name.contains('-');
    let alpha: Vec<char> = name.chars().filter(|c| c.is_alphabetic()).collect();
    if alpha.is_empty() {
        return NamingStyle::Other;
    }
    if has_underscore && has_dash {
        return NamingStyle::Other;
    }
    if has_underscore {
        return if alpha.iter().all(|c| c.is_lowercase()) {
            NamingStyle::Snake
        } else {
            NamingStyle::Other
        };
    }
    if has_dash {
        return if alpha.iter().all(|c| c.is_lowercase()) {
            NamingStyle::Kebab
        } else {
            NamingStyle::Other
        };
    }
    let first_upper = alpha[0].is_uppercase();
    let all_upper = alpha.iter().all(|c| c.is_uppercase());
    let all_lower = alpha.iter().all(|c| c.is_lowercase());
    let has_internal_upper = alpha[1..].iter().any(|c| c.is_uppercase());
    match (first_upper, all_upper, all_lower, has_internal_upper) {
        (_, true, _, _) => NamingStyle::UpperCase,
        (_, _, true, _) => NamingStyle::LowerCase,
        (true, _, _, _) => NamingStyle::UpperCamel,
        (false, _, _, true) => NamingStyle::LowerCamel,
        _ => NamingStyle::Other,
    }
}

/// Split an identifier into lowercase word tokens (`VideoSegment` →
/// `["video","segment"]`, `has_duration` → `["has","duration"]`).
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let chars: Vec<char> = name.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' || c == '.' || c == ' ' {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            continue;
        }
        if c.is_uppercase() && !current.is_empty() {
            // Camel boundary — but keep acronym runs together (`MPEG7Video`
            // splits as mpeg7 | video).
            let prev_lower = chars[i - 1].is_lowercase() || chars[i - 1].is_numeric();
            let next_lower = chars.get(i + 1).map(|n| n.is_lowercase()).unwrap_or(false);
            if prev_lower || (chars[i - 1].is_uppercase() && next_lower) {
                tokens.push(std::mem::take(&mut current));
            }
        }
        current.extend(c.to_lowercase());
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens.retain(|t| !t.is_empty());
    tokens
}

/// The three-level scale the paper uses for the criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConventionLevel {
    Low,
    Medium,
    High,
}

/// Naming analysis over a whole ontology.
#[derive(Debug, Clone, PartialEq)]
pub struct NamingReport {
    /// Share of entities following the dominant convention per entity kind
    /// (classes judged separately from properties, as conventions differ).
    pub consistency: f64,
    /// Share of entities whose tokens look like words (≥ 2 letters each,
    /// not digit-dominated).
    pub wordiness: f64,
    /// Share of entities in standard namespaces (see
    /// [`vocab::STANDARD_NAMESPACES`]).
    pub standard_share: f64,
    /// Style histogram over all schema entities.
    pub styles: BTreeMap<NamingStyle, usize>,
}

impl NamingReport {
    /// Analyze the schema entities of an ontology.
    pub fn analyze(o: &Ontology) -> NamingReport {
        let classes: Vec<&Iri> = o.classes.iter().collect();
        let props: Vec<&Iri> = o
            .object_properties
            .iter()
            .chain(o.datatype_properties.iter())
            .collect();
        let all: Vec<&Iri> = classes.iter().chain(props.iter()).copied().collect();

        if all.is_empty() {
            return NamingReport {
                consistency: 0.0,
                wordiness: 0.0,
                standard_share: 0.0,
                styles: BTreeMap::new(),
            };
        }

        let mut styles: BTreeMap<NamingStyle, usize> = BTreeMap::new();
        for e in &all {
            *styles.entry(classify(e.local_name())).or_insert(0) += 1;
        }

        let consistency = (dominant_share(&classes) * classes.len() as f64
            + dominant_share(&props) * props.len() as f64)
            / all.len() as f64;

        let wordy = all.iter().filter(|e| looks_wordy(e.local_name())).count();
        let standard = all
            .iter()
            .filter(|e| {
                vocab::STANDARD_NAMESPACES
                    .iter()
                    .any(|ns| e.as_str().starts_with(ns))
            })
            .count();

        NamingReport {
            consistency,
            wordiness: wordy as f64 / all.len() as f64,
            standard_share: standard as f64 / all.len() as f64,
            styles,
        }
    }

    /// Collapse to the paper's low/medium/high scale.
    ///
    /// *High* needs substantial reuse of standard vocabularies; *medium*
    /// needs consistent, word-like names; everything else is *low*.
    pub fn level(&self) -> ConventionLevel {
        if self.standard_share >= 0.3 {
            ConventionLevel::High
        } else if self.consistency >= 0.7 && self.wordiness >= 0.6 {
            ConventionLevel::Medium
        } else {
            ConventionLevel::Low
        }
    }
}

fn dominant_share(entities: &[&Iri]) -> f64 {
    if entities.is_empty() {
        return 1.0; // vacuously consistent
    }
    let mut counts: BTreeMap<NamingStyle, usize> = BTreeMap::new();
    for e in entities {
        *counts.entry(classify(e.local_name())).or_insert(0) += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f64 / entities.len() as f64
}

fn looks_wordy(name: &str) -> bool {
    let tokens = tokenize(name);
    if tokens.is_empty() {
        return false;
    }
    let wordish = tokens
        .iter()
        .filter(|t| t.chars().filter(|c| c.is_alphabetic()).count() >= 2)
        .count();
    wordish as f64 / tokens.len() as f64 >= 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Graph, Ontology, Term};

    #[test]
    fn classify_styles() {
        assert_eq!(classify("VideoSegment"), NamingStyle::UpperCamel);
        assert_eq!(classify("hasDuration"), NamingStyle::LowerCamel);
        assert_eq!(classify("video_segment"), NamingStyle::Snake);
        assert_eq!(classify("video-segment"), NamingStyle::Kebab);
        assert_eq!(classify("MPEG"), NamingStyle::UpperCase);
        assert_eq!(classify("video"), NamingStyle::LowerCase);
        assert_eq!(classify("x_y-z"), NamingStyle::Other);
        assert_eq!(classify(""), NamingStyle::Other);
        assert_eq!(classify("1234"), NamingStyle::Other);
    }

    #[test]
    fn tokenize_camel_and_snake() {
        assert_eq!(tokenize("VideoSegment"), vec!["video", "segment"]);
        assert_eq!(tokenize("hasDuration"), vec!["has", "duration"]);
        assert_eq!(tokenize("video_segment"), vec!["video", "segment"]);
        assert_eq!(tokenize("MPEG7Video"), vec!["mpeg7", "video"]);
        assert_eq!(tokenize("HTTPServer"), vec!["http", "server"]);
        assert!(tokenize("").is_empty());
    }

    fn ontology_with(classes: &[&str], props: &[&str]) -> Ontology {
        let mut g = Graph::new();
        for c in classes {
            g.add(Term::iri(*c), vocab::RDF_TYPE, Term::iri(vocab::OWL_CLASS));
        }
        for p in props {
            g.add(
                Term::iri(*p),
                vocab::RDF_TYPE,
                Term::iri(vocab::OWL_OBJECT_PROPERTY),
            );
        }
        Ontology::from_graph(g)
    }

    #[test]
    fn consistent_camel_scores_medium() {
        let o = ontology_with(
            &[
                "http://e/VideoSegment",
                "http://e/AudioTrack",
                "http://e/MediaItem",
                "http://e/StillImage",
            ],
            &["http://e/hasDuration", "http://e/depictsScene"],
        );
        let r = NamingReport::analyze(&o);
        assert!(r.consistency > 0.9, "consistency {}", r.consistency);
        assert!(r.wordiness > 0.9);
        assert_eq!(r.level(), ConventionLevel::Medium);
    }

    #[test]
    fn standard_namespace_scores_high() {
        let o = ontology_with(
            &[
                "http://www.w3.org/ns/ma-ont#MediaResource",
                "http://www.w3.org/ns/ma-ont#VideoTrack",
                "http://e/LocalThing",
            ],
            &[],
        );
        let r = NamingReport::analyze(&o);
        assert!(r.standard_share > 0.5);
        assert_eq!(r.level(), ConventionLevel::High);
    }

    #[test]
    fn opaque_codes_score_low() {
        let o = ontology_with(
            &[
                "http://e/C001",
                "http://e/c_002-x",
                "http://e/XY1",
                "http://e/q9",
            ],
            &[],
        );
        let r = NamingReport::analyze(&o);
        assert_eq!(r.level(), ConventionLevel::Low);
    }

    #[test]
    fn mixed_styles_hurt_consistency() {
        let consistent = NamingReport::analyze(&ontology_with(
            &[
                "http://e/AlphaBeta",
                "http://e/GammaDelta",
                "http://e/EpsilonZeta",
            ],
            &[],
        ));
        let mixed = NamingReport::analyze(&ontology_with(
            &[
                "http://e/AlphaBeta",
                "http://e/gamma_delta",
                "http://e/epsilon-zeta",
            ],
            &[],
        ));
        assert!(mixed.consistency < consistent.consistency);
    }

    #[test]
    fn classes_and_properties_judged_separately() {
        // UpperCamel classes + lowerCamel properties is the OWL norm and
        // should count as fully consistent.
        let o = ontology_with(
            &["http://e/VideoSegment", "http://e/AudioTrack"],
            &["http://e/hasDuration", "http://e/hasTitle"],
        );
        let r = NamingReport::analyze(&o);
        assert!((r.consistency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ontology_report() {
        let r = NamingReport::analyze(&ontology_with(&[], &[]));
        assert_eq!(r.level(), ConventionLevel::Low);
        assert_eq!(r.consistency, 0.0);
    }
}
