//! Cross-crate integration of the *automated* reuse pipeline: synthetic
//! corpus generation → Turtle round trip → assessment → decision model →
//! ranking → selection → integration.

use maut::prelude::*;
use neon_reuse::{
    activities::{self, OntologyRegistry, RegistryEntry},
    criteria, AssessmentInput, OntologyAssessor,
};
use ontolib::{parse_turtle, write_turtle, CompetencyQuestion, GeneratorConfig, OntologyGenerator};

fn mm_questions() -> Vec<CompetencyQuestion> {
    [
        "What is the duration of a video segment?",
        "Which audio track belongs to a media stream?",
        "What codec does the container use?",
        "Who created the media collection?",
        "What genre does the broadcast have?",
        "Which regions of a still image depict agents?",
    ]
    .iter()
    .map(|q| CompetencyQuestion::new(*q))
    .collect()
}

fn entry(name: &str, cfg: GeneratorConfig, meta: AssessmentInput) -> RegistryEntry {
    // Force a Turtle round trip so the parser sits on the critical path.
    let graph = OntologyGenerator::new(cfg).generate_graph();
    let text = write_turtle(&graph);
    let parsed = parse_turtle(&text).expect("generator output is parseable");
    RegistryEntry {
        name: name.to_string(),
        ontology: ontolib::Ontology::from_graph(parsed),
        metadata: meta,
        tags: vec!["multimedia".to_string()],
    }
}

fn build_registry() -> OntologyRegistry {
    let mut r = OntologyRegistry::new();
    r.add(entry(
        "rich",
        GeneratorConfig {
            namespace: "http://t/rich#".into(),
            num_classes: 50,
            label_prob: 0.95,
            comment_prob: 0.9,
            standard_share: 0.4,
            seed: 11,
            ..GeneratorConfig::default()
        },
        AssessmentInput {
            financial_cost: Some(3),
            required_time: Some(3),
            external_knowledge: Some(3),
            implementation_language: Some(3),
            tests_available: Some(2),
            former_evaluation: Some(2),
            team_reputation: Some(3),
            purpose_reliability: Some(3),
            practical_support: Some(2),
        },
    ));
    r.add(entry(
        "poor",
        GeneratorConfig {
            namespace: "http://t/poor#".into(),
            num_classes: 30,
            label_prob: 0.1,
            comment_prob: 0.0,
            opaque_prob: 0.8,
            seed: 12,
            ..GeneratorConfig::default()
        },
        AssessmentInput {
            financial_cost: Some(1),
            required_time: Some(1),
            implementation_language: Some(1),
            purpose_reliability: Some(1),
            ..AssessmentInput::default()
        },
    ));
    r
}

/// Build a flat model over the assessed rows (uniform weight intervals).
fn model_from_rows(rows: Vec<(String, Vec<Perf>)>) -> DecisionModel {
    let cs = criteria();
    let mut b = DecisionModelBuilder::new("assessment pipeline");
    let n = cs.len() as f64;
    let mut pairs = Vec::new();
    for c in &cs {
        let a = match &c.scale {
            neon_reuse::criteria::CriterionScale::FourLevel(levels) => {
                b.discrete_attribute(c.key, c.name, levels)
            }
            neon_reuse::criteria::CriterionScale::ValueT => {
                b.continuous_attribute(c.key, c.name, 0.0, neon_reuse::MNVLT, Direction::Increasing)
            }
        };
        pairs.push((a, Interval::new(0.5 / n, 1.5 / n)));
    }
    b.attach_attributes_to_root(&pairs);
    for (name, row) in rows {
        b.alternative(name, row);
    }
    b.build().expect("assessed rows form a valid model")
}

#[test]
fn full_pipeline_prefers_the_rich_ontology() {
    let registry = build_registry();
    assert_eq!(registry.search(&["multimedia"]).len(), 2);

    let assessor = OntologyAssessor::new(mm_questions());
    let rows = registry.assess_all(&assessor);
    assert_eq!(rows.len(), 2);

    let model = model_from_rows(rows);
    let ranking = EvalContext::new(model).expect("valid").evaluate().ranking();
    assert_eq!(ranking[0].name, "rich");
    assert!(ranking[0].bounds.avg > ranking[1].bounds.avg + 0.1);
}

#[test]
fn missing_metadata_flows_into_utility_intervals() {
    let registry = build_registry();
    let assessor = OntologyAssessor::new(mm_questions());
    let rows = registry.assess_all(&assessor);
    // "poor" left several metadata fields unset.
    let poor_missing = rows[1].1.iter().filter(|p| p.is_missing()).count();
    assert!(poor_missing >= 4);

    let model = model_from_rows(rows);
    let mut ctx = EvalContext::new(model.clone()).expect("valid");
    let eval = ctx.evaluate();

    // Holding everything else fixed, filling in the missing cells must
    // shrink the candidate's utility band: the [0,1] interval is what makes
    // it wide.
    // Fill the missing cells through the incremental mutation API: each
    // set_perf patches one matrix cell and dirty-tracks one row.
    for j in 0..ctx.model().num_attributes() {
        if ctx.model().perf.get(1, j).is_missing() {
            let attr = maut::AttributeId::from_index(j);
            ctx.set_perf(1, attr, Perf::level(2)).expect("valid level");
        }
    }
    let filled_eval = ctx.evaluate();
    let poor_width = eval.bounds[1].max - eval.bounds[1].min;
    let filled_width = filled_eval.bounds[1].max - filled_eval.bounds[1].min;
    assert!(
        poor_width > filled_width + 0.05,
        "{poor_width} vs {filled_width}"
    );
}

#[test]
fn integration_merges_selected_candidates() {
    let registry = build_registry();
    let entries = registry.entries();
    let report = activities::integrate(&[
        (&entries[0].name, &entries[0].ontology),
        (&entries[1].name, &entries[1].ontology),
    ]);
    assert_eq!(report.sources.len(), 2);
    // The merged network contains both namespaces' entities.
    let ns: Vec<&str> = report
        .network
        .classes
        .iter()
        .map(|c| c.namespace())
        .collect();
    assert!(ns.iter().any(|n| n.contains("rich")));
    assert!(ns.iter().any(|n| n.contains("poor")));
    // Serializes as valid Turtle.
    let text = write_turtle(&report.network.graph);
    assert_eq!(
        parse_turtle(&text).expect("valid").len(),
        report.total_triples
    );
}

#[test]
fn sensitivity_analyses_run_on_assessed_models() {
    let registry = build_registry();
    let assessor = OntologyAssessor::new(mm_questions());
    let model = model_from_rows(registry.assess_all(&assessor));
    let ctx = EvalContext::new(model).expect("valid");
    let nd = maut_sense::non_dominated_ctx(&ctx);
    assert!(nd.contains(&0), "the rich candidate is never dominated");
    let po = maut_sense::potentially_optimal_ctx(&ctx).expect("solver healthy");
    assert!(po[0].potentially_optimal);
    let mc =
        maut_sense::MonteCarlo::new(maut_sense::MonteCarloConfig::Random, 500, 3).run_ctx(&ctx);
    assert_eq!(mc.stats[0].mode, 1);
}
