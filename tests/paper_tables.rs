//! Golden regression test for the paper's case-study numbers.
//!
//! Snapshots the 23 × 14 evaluation table (Fig 6 min/avg/max per
//! alternative), the weight stability intervals (Fig 8, best-alternative
//! mode at resolution 200), and the non-dominated set (Section V) against
//! the checked-in fixture `tests/fixtures/paper_tables.txt`, so a future
//! refactor of the evaluation kernels cannot silently shift the paper's
//! numbers. Everything is rounded to six decimals — real regressions move
//! far more than rounding noise.
//!
//! To regenerate after an *intentional* numeric change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test paper_tables
//! ```

use maut::EvalContext;
use maut_sense::{dominance, stability, StabilityMode};
use std::fmt::Write as _;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/paper_tables.txt"
);

fn render_tables() -> String {
    let mut ctx = EvalContext::new(neon_reuse::paper_model().model).expect("paper model is valid");
    let mut out = String::new();

    out.push_str("# evaluation (Fig 6): alternative min avg max\n");
    let eval = ctx.evaluate();
    for (name, b) in eval.names().iter().zip(&eval.bounds) {
        writeln!(out, "{name}\t{:.6}\t{:.6}\t{:.6}", b.min, b.avg, b.max).expect("write");
    }

    out.push_str("\n# stability intervals (Fig 8): objective lo hi current\n");
    for r in stability::all_stability_intervals_ctx(&ctx, StabilityMode::BestAlternative, 200) {
        let key = &ctx.model().tree.get(r.objective).key;
        writeln!(out, "{key}\t{:.6}\t{:.6}\t{:.6}", r.lo, r.hi, r.current).expect("write");
    }

    out.push_str("\n# non-dominated set (Section V)\n");
    for i in dominance::non_dominated_ctx(&ctx) {
        writeln!(out, "{}", ctx.model().alternatives[i]).expect("write");
    }
    out
}

#[test]
fn paper_tables_match_golden_fixture() {
    let rendered = render_tables();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &rendered).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run with UPDATE_GOLDEN=1 to create it");
    if rendered != golden {
        let first_diff = rendered
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map(|n| {
                format!(
                    "first differing line {}:\n  got:    {}\n  golden: {}",
                    n + 1,
                    rendered.lines().nth(n).unwrap_or(""),
                    golden.lines().nth(n).unwrap_or("")
                )
            })
            .unwrap_or_else(|| "line counts differ".to_string());
        panic!(
            "paper tables drifted from the golden fixture ({first_diff})\n\
             If the change is intentional, regenerate with UPDATE_GOLDEN=1."
        );
    }
}
