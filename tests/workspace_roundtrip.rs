//! Persistence integration: a saved workspace reloads into a model whose
//! evaluation, sensitivity analyses and Monte Carlo runs are bit-identical.

use gmaa::Workspace;
use maut::EvalContext;
use maut_sense::{MonteCarlo, MonteCarloConfig};
use neon_reuse::paper_model;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gmaa-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn reloaded_model_reproduces_every_analysis() {
    let ws = Workspace::open(tmpdir("full")).expect("workspace opens");
    let original = paper_model().model;
    ws.save("multimedia", &original).expect("save");
    let reloaded = ws.load("multimedia").expect("load");
    assert_eq!(original, reloaded);

    let mut c1 = EvalContext::new(original).expect("valid");
    let mut c2 = EvalContext::new(reloaded).expect("valid");

    // Evaluation identical.
    assert_eq!(c1.evaluate().ranking(), c2.evaluate().ranking());

    // Sensitivity analyses identical.
    assert_eq!(
        maut_sense::non_dominated_ctx(&c1),
        maut_sense::non_dominated_ctx(&c2)
    );
    let p1: Vec<bool> = maut_sense::potentially_optimal_ctx(&c1)
        .expect("solver healthy")
        .into_iter()
        .map(|o| o.potentially_optimal)
        .collect();
    let p2: Vec<bool> = maut_sense::potentially_optimal_ctx(&c2)
        .expect("solver healthy")
        .into_iter()
        .map(|o| o.potentially_optimal)
        .collect();
    assert_eq!(p1, p2);

    // Monte Carlo identical given the seed.
    let mc = |c: &EvalContext| {
        MonteCarlo::new(MonteCarloConfig::ElicitedIntervals, 500, 7)
            .run_ctx(c)
            .mean_ranks()
    };
    assert_eq!(mc(&c1), mc(&c2));
}

#[test]
fn workspace_lists_saved_models() {
    let ws = Workspace::open(tmpdir("list")).expect("workspace opens");
    let model = paper_model().model;
    ws.save("a", &model).expect("save a");
    ws.save("b", &model).expect("save b");
    assert_eq!(
        ws.list().expect("list"),
        vec!["a".to_string(), "b".to_string()]
    );
    ws.delete("a").expect("delete");
    assert_eq!(ws.list().expect("list"), vec!["b".to_string()]);
}

#[test]
fn hand_corrupted_model_fails_validation_on_load() {
    let ws = Workspace::open(tmpdir("corrupt")).expect("workspace opens");
    let model = paper_model().model;
    ws.save("m", &model).expect("save");
    // Break an invariant in the JSON: make a discrete level out of range.
    let path = ws.path().join("m.json");
    let text = std::fs::read_to_string(&path).expect("read");
    let broken = text.replacen("\"Level\": 3", "\"Level\": 9", 1);
    assert_ne!(text, broken, "expected a Level cell in the JSON");
    std::fs::write(&path, broken).expect("write");
    match ws.load("m") {
        Err(gmaa::WorkspaceError::Invalid(_)) => {}
        other => panic!("expected validation failure, got {other:?}"),
    }
}
