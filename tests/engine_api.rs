//! End-to-end integration of the `AnalysisEngine` API on the paper's case
//! study: all five analyses (Fig 6 evaluation, Fig 7 subtree re-ranking,
//! Fig 8 weight stability, Section V dominance / potential optimality,
//! Figs 9–10 Monte Carlo) run through one engine against one shared
//! `EvalContext`, and incremental mutation (`set_perf` / `set_weight`)
//! reproduces a from-scratch evaluation exactly.

use gmaa::AnalysisEngine;
use maut::{Interval, Perf};
use maut_sense::{MonteCarloConfig, StabilityMode};
use neon_reuse::paper_model;

fn engine() -> AnalysisEngine {
    let mut e = AnalysisEngine::new(paper_model().model).expect("paper model is valid");
    e.mc_trials = 1_000;
    e.stability_resolution = 60;
    e
}

#[test]
fn all_five_analyses_share_one_context() {
    let mut e = engine();

    // Fig 6 — evaluation: all 23 candidates ranked, Media Ontology first.
    let eval = e.evaluate();
    assert_eq!(eval.bounds.len(), 23);
    let ranking = eval.ranking();
    assert_eq!(ranking.len(), 23);
    assert_eq!(ranking[0].name, "Media Ontology");

    // Fig 7 — subtree re-ranking for every top-level objective.
    for key in [
        "reuse_cost",
        "understandability",
        "integration",
        "reliability",
    ] {
        let sub = e.rank_by(key).expect("objective exists");
        assert_eq!(sub.bounds.len(), 23);
        for b in &sub.bounds {
            assert!(b.is_ordered(), "{key}: {b:?}");
        }
    }

    // Fig 8 — weight stability: the paper's two sensitive criteria.
    let funct = e.model().tree.find("funct_requir").expect("exists");
    let naming = e.model().tree.find("naming_conv").expect("exists");
    assert!(!e
        .stability_of(funct, StabilityMode::BestAlternative)
        .is_fully_stable(1e-4));
    assert!(!e
        .stability_of(naming, StabilityMode::BestAlternative)
        .is_fully_stable(1e-4));

    // Section V — dominance and potential optimality. The paper discards
    // 3 of 23 (20 survivors); our reconstructed utility matrix has
    // narrower bands than the original experts' (see the band-width
    // ablation), so it discards more — but every candidate the paper
    // names as discarded is discarded here too, and the paper's top five
    // all survive.
    let analysis = e.analyze().expect("solver healthy");
    let discarded: Vec<&str> = analysis
        .discarded()
        .iter()
        .map(|&i| e.model().alternatives[i].as_str())
        .collect();
    for name in ["Kanzaki Music", "Photography Ontology", "MPEG7 Ontology"] {
        assert!(
            discarded.contains(&name),
            "{name} should be discarded, got {discarded:?}"
        );
    }
    let survivors: Vec<&str> = analysis
        .survivors()
        .iter()
        .map(|&i| e.model().alternatives[i].as_str())
        .collect();
    assert!(survivors.len() >= 10, "{}", survivors.len());
    for name in ["Media Ontology", "Boemie VDO", "COMM", "SAPO", "DIG35"] {
        assert!(survivors.contains(&name), "{name} should survive");
    }
    assert!(analysis.non_dominated.len() >= survivors.len());

    // Figs 9–10 — Monte Carlo: only the paper's two leaders ever rank
    // first over the elicited intervals.
    let ever: Vec<&str> = analysis
        .monte_carlo
        .ever_rank_one()
        .into_iter()
        .map(|i| e.model().alternatives[i].as_str())
        .collect();
    assert_eq!(ever, ["Boemie VDO", "Media Ontology"]);

    // The whole pipeline ran against one shared context: each scope
    // (root + the four Fig 7 subtrees) was computed cold exactly once;
    // every repeated read was a cache hit.
    assert_eq!(e.stats().cold_evaluations, 5);
    assert!(e.stats().cache_hits >= 1);
    assert_eq!(e.stats().rows_recomputed, 0);
}

#[test]
fn incremental_set_perf_matches_from_scratch_exactly() {
    let mut e = engine();
    e.evaluate(); // warm the cache so mutations exercise the refresh path

    // Fill in three of the dataset's missing cells and bump a level.
    let financ = e.model().find_attribute("financ_cost").expect("exists");
    let tests = e.model().find_attribute("availab_test").expect("exists");
    let doc = e.model().find_attribute("doc_quality").expect("exists");
    e.set_perf(17, financ, Perf::level(2)).expect("valid"); // Nokia Ontology
    e.set_perf(11, tests, Perf::level(1)).expect("valid"); // Kanzaki Music
    e.set_perf(20, doc, Perf::level(3)).expect("valid"); // MPEG7 Ontology
    let incremental = e.evaluate();

    // A fresh engine over the mutated model must agree bit-for-bit.
    let mut fresh = AnalysisEngine::new(e.model().clone()).expect("valid");
    fresh.mc_trials = e.mc_trials;
    fresh.stability_resolution = e.stability_resolution;
    assert_eq!(incremental, fresh.evaluate());

    // Only the three touched rows were re-scored.
    assert_eq!(e.stats().rows_recomputed, 3);

    // Downstream analyses agree too (they read the same patched matrices).
    assert_eq!(e.non_dominated(), fresh.non_dominated());
    assert_eq!(
        e.potentially_optimal().expect("solver healthy"),
        fresh.potentially_optimal().expect("solver healthy")
    );
    assert_eq!(
        e.monte_carlo(MonteCarloConfig::ElicitedIntervals)
            .mean_ranks(),
        fresh
            .monte_carlo(MonteCarloConfig::ElicitedIntervals)
            .mean_ranks()
    );
}

#[test]
fn incremental_set_weight_matches_from_scratch_exactly() {
    let mut e = engine();
    e.evaluate();

    // Re-elicit the Understandability branch a little heavier.
    let under = e.model().tree.find("understandability").expect("exists");
    e.set_weight(under, Interval::new(0.20, 0.32))
        .expect("feasible");
    let incremental = e.evaluate();

    let mut fresh = AnalysisEngine::new(e.model().clone()).expect("valid");
    fresh.mc_trials = e.mc_trials;
    assert_eq!(incremental, fresh.evaluate());
    assert_eq!(
        e.monte_carlo(MonteCarloConfig::ElicitedIntervals)
            .mean_ranks(),
        fresh
            .monte_carlo(MonteCarloConfig::ElicitedIntervals)
            .mean_ranks()
    );
}

#[test]
fn batch_evaluate_agrees_with_full_evaluation() {
    let mut e = engine();
    let full = e.evaluate();
    let order: Vec<usize> = (0..23).rev().collect();
    let batch = e.batch_evaluate(&order);
    for (pos, &alt) in order.iter().enumerate() {
        assert_eq!(batch[pos], full.bounds[alt]);
    }
}

#[test]
fn engine_rejects_invalid_mutations_without_corrupting_state() {
    let mut e = engine();
    let before = e.evaluate();
    let financ = e.model().find_attribute("financ_cost").expect("exists");
    assert!(e.set_perf(0, financ, Perf::level(9)).is_err());
    assert!(e.set_perf(99, financ, Perf::level(1)).is_err());
    let root = e.model().tree.root();
    assert!(e.set_weight(root, Interval::point(1.0)).is_err());
    assert_eq!(e.evaluate(), before);
}
