//! Differential suite for the columnar (SoA) batch pipeline.
//!
//! The `BandMatrixSoA` rewrite moved the Monte Carlo hot loop, dominance
//! and potential optimality, and `batch_evaluate` onto column-major
//! kernels. These tests pin the new paths to the scalar references on
//! randomized models (3–30 alternatives × 2–12 attributes, flat and
//! hierarchical, with missing cells):
//!
//! * SoA batch evaluation vs the scalar per-row evaluation;
//! * Monte Carlo rank counts and acceptance fractions under a fixed seed,
//!   scalar loop vs batched SoA vs the scoped-thread fan-out (1 vs N
//!   workers);
//! * dominance matrices and potential-optimality verdicts vs in-test
//!   row-major reference implementations (the pre-SoA logic, rebuilt here
//!   so they share no code with the columnar kernels under test).
//!
//! All comparisons hold to `ORDERING_EPS`; in practice the pipelines agree
//! bit-for-bit because every kernel accumulates in the same index order.
//! The default suite runs 64 random cases; the `#[ignore]`d suite (run in
//! CI via `cargo test -- --include-ignored`) covers 256 plus the LP-heavy
//! potential-optimality sweep.

#![allow(deprecated)]

use maut::prelude::*;
use maut_sense::{dominance, potential, DominanceOutcome, MonteCarlo, MonteCarloConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simplex_lp::{Bound, LinearProgram, Objective, Relation, Status};

/// A random, always-valid decision model: mixed discrete / continuous
/// attributes, occasional missing performances, and (for even seeds) a
/// two-level objective hierarchy with interval weights that always
/// intersect the simplex.
fn random_model(seed: u64, max_alts: usize, max_attrs: usize) -> DecisionModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_alts = rng.random_range(3..=max_alts);
    let n_attrs = rng.random_range(2..=max_attrs);
    let mut b = DecisionModelBuilder::new(format!("random-{seed}"));

    let mut attrs = Vec::with_capacity(n_attrs);
    // Levels per attribute; `None` marks a continuous one.
    let mut levels: Vec<Option<usize>> = Vec::with_capacity(n_attrs);
    for j in 0..n_attrs {
        if rng.random_range(0..4) == 0 {
            let dir = if rng.random::<bool>() {
                Direction::Increasing
            } else {
                Direction::Decreasing
            };
            attrs.push(b.continuous_attribute(format!("c{j}"), format!("C{j}"), 0.0, 100.0, dir));
            levels.push(None);
        } else {
            let k = rng.random_range(2..=5);
            let names: Vec<String> = (0..k).map(|l| format!("l{l}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            attrs.push(b.discrete_attribute(format!("d{j}"), format!("D{j}"), &refs));
            levels.push(Some(k));
        }
    }

    // Sibling weight intervals spread symmetrically around the uniform
    // share, so lows sum to ≤ 1 and upps to ≥ 1 in every group.
    let spread_interval = |rng: &mut StdRng, siblings: usize| {
        let base = 1.0 / siblings as f64;
        let d: f64 = rng.random_range(0.05..0.9);
        Interval::new(base * (1.0 - d), (base * (1.0 + d)).min(1.0))
    };

    if seed.is_multiple_of(2) && n_attrs >= 4 {
        // Two-level hierarchy: split attributes into 2–3 groups.
        let n_groups = rng.random_range(2..=3.min(n_attrs / 2));
        let mut group_ids = Vec::new();
        for g in 0..n_groups {
            let w = spread_interval(&mut rng, n_groups);
            group_ids.push(b.objective_under_root(format!("g{g}"), format!("G{g}"), w));
        }
        for (g, &group) in group_ids.iter().enumerate() {
            let members: Vec<usize> = (0..n_attrs).filter(|j| j % n_groups == g).collect();
            for &j in &members {
                let w = spread_interval(&mut rng, members.len());
                b.attach_attribute(group, attrs[j], w);
            }
        }
    } else {
        let pairs: Vec<(AttributeId, Interval)> = attrs
            .iter()
            .map(|&a| (a, spread_interval(&mut rng, n_attrs)))
            .collect();
        b.attach_attributes_to_root(&pairs);
    }

    for i in 0..n_alts {
        let perfs: Vec<Perf> = levels
            .iter()
            .map(|&k| {
                if rng.random_range(0..20) == 0 {
                    Perf::Missing
                } else {
                    match k {
                        None => Perf::value(rng.random_range(0.0..=100.0)),
                        Some(k) => Perf::level(rng.random_range(0..k)),
                    }
                }
            })
            .collect();
        b.alternative(format!("alt{i:02}"), perfs);
    }
    b.build().expect("random model is valid")
}

/// Row-major dominance reference — the pre-SoA logic over
/// `bound_matrices()`, sharing no code with the columnar kernels.
fn reference_dominance(ctx: &EvalContext) -> Vec<Vec<DominanceOutcome>> {
    let (u_lo, u_hi) = ctx.bound_matrices();
    let polytope = dominance::weight_polytope_ctx(ctx);
    let n = u_lo.len();
    (0..n)
        .map(|i| {
            (0..n)
                .map(|k| {
                    if i == k {
                        return DominanceOutcome::None;
                    }
                    let d: Vec<f64> = u_lo[i].iter().zip(&u_hi[k]).map(|(a, b)| a - b).collect();
                    if polytope.minimize(&d).0 < -1e-9 {
                        return DominanceOutcome::None;
                    }
                    let dbest: Vec<f64> =
                        u_hi[i].iter().zip(&u_lo[k]).map(|(a, b)| a - b).collect();
                    if polytope.maximize(&dbest).0 > 1e-9 {
                        DominanceOutcome::Dominates
                    } else {
                        DominanceOutcome::None
                    }
                })
                .collect()
        })
        .collect()
}

/// Row-major potential-optimality reference — the pre-SoA max-slack LP
/// built straight from `bound_matrices()`.
fn reference_potential(ctx: &EvalContext) -> Vec<(bool, f64)> {
    let (u_lo, u_hi) = ctx.bound_matrices();
    let polytope = dominance::weight_polytope_ctx(ctx);
    let n = u_lo.len();
    let n_attr = polytope.dim();
    (0..n)
        .map(|i| {
            let mut lp = LinearProgram::new(n_attr + 1, Objective::Maximize);
            let mut obj = vec![0.0; n_attr + 1];
            obj[n_attr] = 1.0;
            lp.set_objective(&obj);
            for j in 0..n_attr {
                lp.set_bound(j, Bound::boxed(polytope.lower()[j], polytope.upper()[j]));
            }
            lp.set_bound(n_attr, Bound::boxed(-2.0, 2.0));
            let mut norm = vec![1.0; n_attr + 1];
            norm[n_attr] = 0.0;
            lp.add_constraint(&norm, Relation::Eq, 1.0);
            for (k, u_lo_k) in u_lo.iter().enumerate() {
                if k == i {
                    continue;
                }
                let mut row = vec![0.0; n_attr + 1];
                for (r, (hi, lo)) in row.iter_mut().zip(u_hi[i].iter().zip(u_lo_k)) {
                    *r = hi - lo;
                }
                row[n_attr] = -1.0;
                lp.add_constraint(&row, Relation::Ge, 0.0);
            }
            let sol = lp.solve().expect("well-formed LP");
            match sol.status {
                Status::Optimal => (sol.objective >= -1e-9, sol.objective),
                _ => (false, f64::NEG_INFINITY),
            }
        })
        .collect()
}

fn assert_bounds_close(a: &UtilityBounds, b: &UtilityBounds, what: &str) {
    assert!(
        (a.min - b.min).abs() <= ORDERING_EPS
            && (a.avg - b.avg).abs() <= ORDERING_EPS
            && (a.max - b.max).abs() <= ORDERING_EPS,
        "{what}: {a:?} vs {b:?}"
    );
}

/// One differential case: every SoA path against its scalar reference.
fn check_case(seed: u64, max_alts: usize, max_attrs: usize, trials: usize, with_lp: bool) {
    let model = random_model(seed, max_alts, max_attrs);
    let mut ctx = EvalContext::new(model.clone()).expect("valid");
    let n = model.num_alternatives();

    // SoA batch evaluation vs the scalar per-row evaluation.
    let full = ctx.evaluate();
    let order: Vec<usize> = (0..n).rev().collect();
    for threads in [1usize, 3] {
        let root = model.tree.root();
        let batch = ctx.batch_evaluate_with(root, &order, threads);
        for (pos, &alt) in order.iter().enumerate() {
            assert_bounds_close(&batch[pos], &full.bounds[alt], "batch vs evaluate");
        }
    }

    // Monte Carlo: scalar loop vs batched SoA vs threaded fan-out.
    let config = match seed % 3 {
        0 => MonteCarloConfig::Random,
        1 => MonteCarloConfig::ElicitedIntervals,
        _ => MonteCarloConfig::RankOrder((0..model.num_attributes()).collect()),
    };
    let mc = MonteCarlo::new(config, trials, seed ^ 0xD1FF);
    let scalar = mc.run_scalar_ctx(&ctx);
    for threads in [1usize, 4] {
        let batched = mc.clone().with_threads(threads).run_ctx(&ctx);
        assert_eq!(
            scalar.rank_counts(),
            batched.rank_counts(),
            "rank counts, seed {seed}, {threads} threads"
        );
        for alt in 0..n {
            for rank in 1..=n {
                assert!(
                    (scalar.acceptability(alt, rank) - batched.acceptability(alt, rank)).abs()
                        <= ORDERING_EPS,
                    "acceptance fraction, seed {seed}"
                );
            }
        }
    }

    // Dominance: SoA sweep vs the independent row-major reference (and
    // the deprecated model-derived entry point stays consistent too).
    let reference = reference_dominance(&ctx);
    assert_eq!(
        dominance::dominance_matrix_ctx(&ctx),
        reference,
        "dominance matrix, seed {seed}"
    );
    assert_eq!(
        dominance::dominance_matrix(&model),
        reference,
        "deprecated dominance path, seed {seed}"
    );

    // Potential optimality (LP-per-alternative; slow suite only).
    if with_lp {
        let soa_out = potential::potentially_optimal_ctx(&ctx);
        let reference = reference_potential(&ctx);
        for (a, &(optimal, slack)) in soa_out.iter().zip(&reference) {
            assert_eq!(a.potentially_optimal, optimal, "seed {seed}");
            assert!((a.slack - slack).abs() <= 1e-7, "slack, seed {seed}");
        }
    }
}

#[test]
fn differential_suite_64_random_models() {
    for seed in 0..64 {
        check_case(seed, 18, 9, 120, false);
    }
}

#[test]
fn paper_model_scalar_and_batched_agree_across_threads() {
    let ctx = EvalContext::new(neon_reuse::paper_model().model).expect("valid");
    let mc = MonteCarlo::new(MonteCarloConfig::ElicitedIntervals, 2_000, 20120402);
    let scalar = mc.run_scalar_ctx(&ctx);
    for threads in [1usize, 2, 8, 0] {
        let run = mc.clone().with_threads(threads).run_ctx(&ctx);
        assert_eq!(scalar.rank_counts(), run.rank_counts(), "{threads} threads");
        assert_eq!(scalar.mean_ranks(), run.mean_ranks());
    }
}

#[test]
fn set_perf_reaches_the_soa_columns_before_batch_evaluate() {
    // The dirty-column regression: a stale SoA would serve pre-mutation
    // utilities to every batch path.
    let mut ctx = EvalContext::new(neon_reuse::paper_model().model).expect("valid");
    let root = ctx.model().tree.root();
    let all: Vec<usize> = (0..23).collect();
    let attr = ctx.model().find_attribute("doc_quality").expect("exists");
    ctx.set_perf(3, attr, Perf::level(3)).expect("valid");
    let batch = ctx.batch_evaluate(root, &all);
    let fresh = EvalContext::new(ctx.model().clone()).expect("valid");
    let fresh_soa = fresh.soa();
    assert_eq!(
        ctx.soa(),
        fresh_soa,
        "SoA columns out of sync after set_perf"
    );
    let mut fresh = fresh;
    let fresh_batch = fresh.batch_evaluate(root, &all);
    assert_eq!(batch, fresh_batch);
}

#[test]
#[ignore = "slow differential suite; CI runs it via --include-ignored"]
fn differential_suite_256_random_models_with_lp() {
    for seed in 0..256 {
        let with_lp = seed % 4 == 0;
        check_case(seed, 30, 12, 400, with_lp);
    }
}
