//! Differential suite for the columnar (SoA) batch pipeline.
//!
//! The `BandMatrixSoA` rewrite moved the Monte Carlo hot loop, dominance
//! and potential optimality, and `batch_evaluate` onto column-major
//! kernels. These tests pin the new paths to the scalar references on
//! randomized models (3–30 alternatives × 2–12 attributes, flat and
//! hierarchical, with missing cells):
//!
//! * SoA batch evaluation vs the scalar per-row evaluation;
//! * Monte Carlo rank counts and acceptance fractions under a fixed seed,
//!   scalar loop vs batched SoA vs the scoped-thread fan-out (1 vs N
//!   workers);
//! * dominance matrices, dominance intervals and potential-optimality
//!   verdicts vs in-test row-major reference implementations (the
//!   pre-blocked-sweep logic, rebuilt here so they share no code with the
//!   columnar kernels under test);
//! * the warm-started LP path: `solve_with` over a shared
//!   `SolverWorkspace` vs a fresh cold `solve` per program, across random
//!   LP families and the potential-optimality skeleton;
//! * the incremental what-if loop: random `set_perf` / `set_weight` edit
//!   sequences against one `AnalysisEngine`, with
//!   `discard_cycle_incremental` / `analyze_incremental` (pair-level
//!   interval updates, selective re-certification, per-alternative warm
//!   bases) compared after every edit against a cold engine's full
//!   recompute on the mutated model.
//!
//! All comparisons hold to `ORDERING_EPS`; in practice the pipelines agree
//! bit-for-bit because every kernel accumulates in the same index order.
//! The default suite runs 64 random cases; the `#[ignore]`d suites (run in
//! CI via `cargo test -- --include-ignored`) cover 256 plus the LP-heavy
//! potential-optimality sweep, the long warm-start differential, and the
//! long edit-sequence histories.

use maut::prelude::*;
use maut_sense::{dominance, intensity, potential, DominanceOutcome, MonteCarlo, MonteCarloConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simplex_lp::{
    Bound, LinearProgram, Objective, Relation, SolverWorkspace, Status, WeightPolytope,
};

/// A random, always-valid decision model: mixed discrete / continuous
/// attributes, occasional missing performances, and (for even seeds) a
/// two-level objective hierarchy with interval weights that always
/// intersect the simplex.
fn random_model(seed: u64, max_alts: usize, max_attrs: usize) -> DecisionModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_alts = rng.random_range(3..=max_alts);
    let n_attrs = rng.random_range(2..=max_attrs);
    let mut b = DecisionModelBuilder::new(format!("random-{seed}"));

    let mut attrs = Vec::with_capacity(n_attrs);
    // Levels per attribute; `None` marks a continuous one.
    let mut levels: Vec<Option<usize>> = Vec::with_capacity(n_attrs);
    for j in 0..n_attrs {
        if rng.random_range(0..4) == 0 {
            let dir = if rng.random::<bool>() {
                Direction::Increasing
            } else {
                Direction::Decreasing
            };
            attrs.push(b.continuous_attribute(format!("c{j}"), format!("C{j}"), 0.0, 100.0, dir));
            levels.push(None);
        } else {
            let k = rng.random_range(2..=5);
            let names: Vec<String> = (0..k).map(|l| format!("l{l}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            attrs.push(b.discrete_attribute(format!("d{j}"), format!("D{j}"), &refs));
            levels.push(Some(k));
        }
    }

    // Sibling weight intervals spread symmetrically around the uniform
    // share, so lows sum to ≤ 1 and upps to ≥ 1 in every group.
    let spread_interval = |rng: &mut StdRng, siblings: usize| {
        let base = 1.0 / siblings as f64;
        let d: f64 = rng.random_range(0.05..0.9);
        Interval::new(base * (1.0 - d), (base * (1.0 + d)).min(1.0))
    };

    if seed.is_multiple_of(2) && n_attrs >= 4 {
        // Two-level hierarchy: split attributes into 2–3 groups.
        let n_groups = rng.random_range(2..=3.min(n_attrs / 2));
        let mut group_ids = Vec::new();
        for g in 0..n_groups {
            let w = spread_interval(&mut rng, n_groups);
            group_ids.push(b.objective_under_root(format!("g{g}"), format!("G{g}"), w));
        }
        for (g, &group) in group_ids.iter().enumerate() {
            let members: Vec<usize> = (0..n_attrs).filter(|j| j % n_groups == g).collect();
            for &j in &members {
                let w = spread_interval(&mut rng, members.len());
                b.attach_attribute(group, attrs[j], w);
            }
        }
    } else {
        let pairs: Vec<(AttributeId, Interval)> = attrs
            .iter()
            .map(|&a| (a, spread_interval(&mut rng, n_attrs)))
            .collect();
        b.attach_attributes_to_root(&pairs);
    }

    for i in 0..n_alts {
        let perfs: Vec<Perf> = levels
            .iter()
            .map(|&k| {
                if rng.random_range(0..20) == 0 {
                    Perf::Missing
                } else {
                    match k {
                        None => Perf::value(rng.random_range(0.0..=100.0)),
                        Some(k) => Perf::level(rng.random_range(0..k)),
                    }
                }
            })
            .collect();
        b.alternative(format!("alt{i:02}"), perfs);
    }
    b.build().expect("random model is valid")
}

/// Row-major dominance reference — the pre-blocked-sweep logic over
/// `bound_matrices()`, sharing no code with the columnar kernels.
fn reference_dominance(ctx: &EvalContext) -> Vec<Vec<DominanceOutcome>> {
    let (u_lo, u_hi) = ctx.bound_matrices();
    let polytope = dominance::weight_polytope_ctx(ctx);
    let n = u_lo.len();
    (0..n)
        .map(|i| {
            (0..n)
                .map(|k| {
                    if i == k {
                        return DominanceOutcome::None;
                    }
                    let d: Vec<f64> = u_lo[i].iter().zip(&u_hi[k]).map(|(a, b)| a - b).collect();
                    if polytope.minimize(&d).0 < -1e-9 {
                        return DominanceOutcome::None;
                    }
                    let dbest: Vec<f64> =
                        u_hi[i].iter().zip(&u_lo[k]).map(|(a, b)| a - b).collect();
                    if polytope.maximize(&dbest).0 > 1e-9 {
                        DominanceOutcome::Dominates
                    } else {
                        DominanceOutcome::None
                    }
                })
                .collect()
        })
        .collect()
}

/// Row-major potential-optimality reference — the pre-SoA max-slack LP
/// built straight from `bound_matrices()`.
fn reference_potential(ctx: &EvalContext) -> Vec<(bool, f64)> {
    let (u_lo, u_hi) = ctx.bound_matrices();
    let polytope = dominance::weight_polytope_ctx(ctx);
    let n = u_lo.len();
    let n_attr = polytope.dim();
    (0..n)
        .map(|i| {
            let mut lp = LinearProgram::new(n_attr + 1, Objective::Maximize);
            let mut obj = vec![0.0; n_attr + 1];
            obj[n_attr] = 1.0;
            lp.set_objective(&obj);
            for j in 0..n_attr {
                lp.set_bound(j, Bound::boxed(polytope.lower()[j], polytope.upper()[j]));
            }
            lp.set_bound(n_attr, Bound::boxed(-2.0, 2.0));
            let mut norm = vec![1.0; n_attr + 1];
            norm[n_attr] = 0.0;
            lp.add_constraint(&norm, Relation::Eq, 1.0);
            for (k, u_lo_k) in u_lo.iter().enumerate() {
                if k == i {
                    continue;
                }
                let mut row = vec![0.0; n_attr + 1];
                for (r, (hi, lo)) in row.iter_mut().zip(u_hi[i].iter().zip(u_lo_k)) {
                    *r = hi - lo;
                }
                row[n_attr] = -1.0;
                lp.add_constraint(&row, Relation::Ge, 0.0);
            }
            let sol = lp.solve().expect("well-formed LP");
            match sol.status {
                Status::Optimal => (sol.objective >= -1e-9, sol.objective),
                _ => (false, f64::NEG_INFINITY),
            }
        })
        .collect()
}

/// Row-major dominance-interval reference — per-pair allocating polytope
/// optimization, the pre-blocked-sweep formulation.
fn reference_intervals(ctx: &EvalContext) -> Vec<Vec<(f64, f64)>> {
    let (u_lo, u_hi) = ctx.bound_matrices();
    let polytope = dominance::weight_polytope_ctx(ctx);
    let n = u_lo.len();
    (0..n)
        .map(|i| {
            (0..n)
                .map(|k| {
                    if i == k {
                        return (0.0, 0.0);
                    }
                    let worst: Vec<f64> =
                        u_lo[i].iter().zip(&u_hi[k]).map(|(a, b)| a - b).collect();
                    let best: Vec<f64> = u_hi[i].iter().zip(&u_lo[k]).map(|(a, b)| a - b).collect();
                    (polytope.minimize(&worst).0, polytope.maximize(&best).0)
                })
                .collect()
        })
        .collect()
}

fn assert_bounds_close(a: &UtilityBounds, b: &UtilityBounds, what: &str) {
    assert!(
        (a.min - b.min).abs() <= ORDERING_EPS
            && (a.avg - b.avg).abs() <= ORDERING_EPS
            && (a.max - b.max).abs() <= ORDERING_EPS,
        "{what}: {a:?} vs {b:?}"
    );
}

/// One differential case: every SoA path against its scalar reference.
fn check_case(seed: u64, max_alts: usize, max_attrs: usize, trials: usize, with_lp: bool) {
    let model = random_model(seed, max_alts, max_attrs);
    let mut ctx = EvalContext::new(model.clone()).expect("valid");
    let n = model.num_alternatives();

    // SoA batch evaluation vs the scalar per-row evaluation.
    let full = ctx.evaluate();
    let order: Vec<usize> = (0..n).rev().collect();
    for threads in [1usize, 3] {
        let root = model.tree.root();
        let batch = ctx.batch_evaluate_with(root, &order, threads);
        for (pos, &alt) in order.iter().enumerate() {
            assert_bounds_close(&batch[pos], &full.bounds[alt], "batch vs evaluate");
        }
    }

    // Monte Carlo: scalar loop vs batched SoA vs threaded fan-out.
    let config = match seed % 3 {
        0 => MonteCarloConfig::Random,
        1 => MonteCarloConfig::ElicitedIntervals,
        _ => MonteCarloConfig::RankOrder((0..model.num_attributes()).collect()),
    };
    let mc = MonteCarlo::new(config, trials, seed ^ 0xD1FF);
    let scalar = mc.run_scalar_ctx(&ctx);
    for threads in [1usize, 4] {
        let batched = mc.clone().with_threads(threads).run_ctx(&ctx);
        assert_eq!(
            scalar.rank_counts(),
            batched.rank_counts(),
            "rank counts, seed {seed}, {threads} threads"
        );
        for alt in 0..n {
            for rank in 1..=n {
                assert!(
                    (scalar.acceptability(alt, rank) - batched.acceptability(alt, rank)).abs()
                        <= ORDERING_EPS,
                    "acceptance fraction, seed {seed}"
                );
            }
        }
    }

    // Dominance: blocked column sweep vs the independent row-major
    // per-pair reference.
    let reference = reference_dominance(&ctx);
    assert_eq!(
        dominance::dominance_matrix_ctx(&ctx),
        reference,
        "dominance matrix, seed {seed}"
    );

    // Dominance intervals: blocked sweep + antisymmetry vs the per-pair
    // min/max reference — bit-identical by the sweep's construction.
    let blocked = intensity::dominance_intervals_ctx(&ctx);
    for (bi, ri) in blocked.iter().zip(reference_intervals(&ctx)) {
        for (b, (min, max)) in bi.iter().zip(ri) {
            assert_eq!(b.min, min, "interval min, seed {seed}");
            assert_eq!(b.max, max, "interval max, seed {seed}");
        }
    }

    // Potential optimality (LP-per-alternative; slow suite only): the
    // warm-started in-place-row chain vs fresh cold LPs per alternative.
    if with_lp {
        let warm_out = potential::potentially_optimal_ctx(&ctx).expect("solver healthy");
        let reference = reference_potential(&ctx);
        for (a, &(optimal, slack)) in warm_out.iter().zip(&reference) {
            assert_eq!(a.potentially_optimal, optimal, "seed {seed}");
            assert!((a.slack - slack).abs() <= 1e-7, "slack, seed {seed}");
        }
    }
}

/// A random LP family sharing one shape: boxed/free variables, mixed
/// relations, slightly perturbed coefficients per member — the shape of
/// problems a warm-started workspace chains over.
fn random_lp(rng: &mut StdRng, n: usize, m: usize, perturb: f64) -> LinearProgram {
    let direction = if rng.random::<bool>() {
        Objective::Minimize
    } else {
        Objective::Maximize
    };
    let mut lp = LinearProgram::new(n, direction);
    let obj: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    lp.set_objective(&obj);
    for j in 0..n {
        match j % 3 {
            0 => {
                lp.set_bound(j, Bound::boxed(0.0, rng.random_range(0.5..2.0)));
            }
            1 => {
                let lo = rng.random_range(-1.0..0.0);
                lp.set_bound(j, Bound::boxed(lo, lo + rng.random_range(0.5..2.0)));
            }
            _ => {} // default non-negative
        }
    }
    for r in 0..m {
        let coeffs: Vec<f64> = (0..n)
            .map(|_| rng.random_range(-1.0..1.0) + perturb)
            .collect();
        let rel = match r % 3 {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        // Keep Ge/Eq rows satisfiable-ish: modest right-hand sides.
        let rhs = match rel {
            Relation::Le => rng.random_range(0.5..3.0),
            Relation::Ge => rng.random_range(-2.0..0.5),
            Relation::Eq => rng.random_range(-0.5..1.5),
        };
        lp.add_constraint(&coeffs, rel, rhs);
    }
    lp
}

/// One warm-start differential case: a family of `chain` same-shaped LPs
/// solved twice — cold (`solve`, fresh workspace each) and chained
/// (`solve_with`, one shared workspace). Statuses must match exactly and
/// optima to tight tolerance, no matter how often the warm path engaged
/// or fell back.
fn check_warm_start_case(seed: u64, chain: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(2..8);
    let m = rng.random_range(1..9);
    let mut ws = SolverWorkspace::new();
    for step in 0..chain {
        let perturb = step as f64 * 0.01;
        let lp = random_lp(&mut rng, n, m, perturb);
        let cold = lp.solve().expect("cold solve healthy");
        let warm = lp.solve_with(&mut ws).expect("warm solve healthy");
        assert_eq!(cold.status, warm.status, "status, seed {seed} step {step}");
        if cold.status == Status::Optimal {
            assert!(
                (cold.objective - warm.objective).abs() <= 1e-7,
                "objective {} vs {}, seed {seed} step {step}",
                cold.objective,
                warm.objective
            );
        }
    }
    let stats = ws.stats();
    assert_eq!(stats.solves, chain);
    assert_eq!(stats.pivots, stats.warm_pivots + stats.cold_pivots);
}

/// The potential-optimality LP skeleton specifically: same bounds and
/// normalization row, per-step difference rows — warm chains here must
/// reproduce cold solves. Returns how many solves warm-started (random
/// rows change more violently than the real potential family's, so a
/// single family may legitimately never warm; the caller asserts an
/// aggregate rate).
fn check_warm_start_skeleton(seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
    let n_attr = rng.random_range(3..10);
    let lows: Vec<f64> = (0..n_attr)
        .map(|_| rng.random_range(0.0..0.6 / n_attr as f64))
        .collect();
    let upps: Vec<f64> = lows
        .iter()
        .map(|l| (l + rng.random_range(0.2..0.8)).min(1.0))
        .collect();
    let polytope = WeightPolytope::new(&lows, &upps).expect("feasible box");
    // Base difference rows shared by the family; each member perturbs
    // them slightly, like consecutive alternatives' LPs do.
    let base: Vec<Vec<f64>> = (0..n_attr)
        .map(|_| (0..n_attr).map(|_| rng.random_range(-0.6..0.6)).collect())
        .collect();
    let mut ws = SolverWorkspace::new();
    for _ in 0..8 {
        let mut lp = LinearProgram::new(n_attr + 1, Objective::Maximize);
        let mut obj = vec![0.0; n_attr + 1];
        obj[n_attr] = 1.0;
        lp.set_objective(&obj);
        for j in 0..n_attr {
            lp.set_bound(j, Bound::boxed(polytope.lower()[j], polytope.upper()[j]));
        }
        lp.set_bound(n_attr, Bound::boxed(-2.0, 2.0));
        let mut norm = vec![1.0; n_attr + 1];
        norm[n_attr] = 0.0;
        lp.add_constraint(&norm, Relation::Eq, 1.0);
        for b in &base {
            let mut row = vec![0.0; n_attr + 1];
            for (r, v) in row.iter_mut().zip(b) {
                *r = v + rng.random_range(-0.05..0.05);
            }
            row[n_attr] = -1.0;
            lp.add_constraint(&row, Relation::Ge, 0.0);
        }
        let cold = lp.solve().expect("cold solve healthy");
        let warm = lp.solve_with(&mut ws).expect("warm solve healthy");
        assert_eq!(cold.status, warm.status, "seed {seed}");
        assert_eq!(cold.status, Status::Optimal, "max-slack LPs are feasible");
        assert!(
            (cold.objective - warm.objective).abs() <= 1e-7,
            "{} vs {}, seed {seed}",
            cold.objective,
            warm.objective
        );
    }
    ws.stats().warm_solves
}

/// One random edit applied to an engine and its description: `set_perf`
/// with a scale-valid performance most of the time, `set_weight` with a
/// (possibly infeasible — then skipped) sibling interval occasionally.
fn apply_random_edit(rng: &mut StdRng, engine: &mut gmaa::AnalysisEngine) {
    let n_alts = engine.model().num_alternatives();
    let n_attrs = engine.model().num_attributes();
    if rng.random_range(0..4) < 3 {
        let alt = rng.random_range(0..n_alts);
        let j = rng.random_range(0..n_attrs);
        let attr = AttributeId::from_index(j);
        let perf = match &engine.model().attributes[j].scale {
            Scale::Discrete(s) => Perf::level(rng.random_range(0..s.len())),
            Scale::Continuous(c) => Perf::value(rng.random_range(c.min..=c.max)),
        };
        engine.set_perf(alt, attr, perf).expect("scale-valid edit");
    } else {
        let tree = &engine.model().tree;
        let non_root: Vec<_> = tree
            .descendants(tree.root())
            .into_iter()
            .filter(|&o| o != tree.root())
            .collect();
        if non_root.is_empty() {
            return;
        }
        let objective = non_root[rng.random_range(0..non_root.len())];
        let mid: f64 = rng.random_range(0.1..0.6);
        let d: f64 = rng.random_range(0.05..0.3);
        // Infeasible sibling combinations are legitimately rejected and
        // must leave the engine state (and its caches) untouched.
        let _ = engine.set_weight(
            objective,
            Interval::new(mid - d.min(mid), (mid + d).min(1.0)),
        );
    }
}

/// One edit-sequence differential case: `edits` random `set_perf` /
/// `set_weight` edits against one engine, asserting after every edit that
/// the incremental discard cycle (pair-level interval update + selective
/// LP re-certification + per-alternative warm bases) equals a cold
/// engine's full recompute on the mutated model — dominance verdicts and
/// intensity ranking bit-for-bit, potential-optimality verdicts exactly,
/// slacks to the certification tolerance. Every `check_every` edits (and
/// once at the end) the full `analyze_incremental()` bundle is compared
/// against a cold `analyze()` too.
fn check_edit_sequence_case(seed: u64, edits: usize, check_every: usize) {
    check_edit_sequence_on(random_model(seed, 14, 8), seed, edits, check_every);
}

/// The edit-sequence differential against an arbitrary starting model
/// (hand-rolled random or generator family).
fn check_edit_sequence_on(model: DecisionModel, seed: u64, edits: usize, check_every: usize) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xED17);
    let mut engine = gmaa::AnalysisEngine::new(model).expect("valid");
    engine.mc_trials = 60;
    engine.stability_resolution = 12;
    // Prime the incremental cache mid-history (not at a clean start) for
    // odd seeds, so both "cache exists" and "no cache yet" first-calls run.
    if seed % 2 == 1 {
        engine.discard_cycle_incremental().expect("solver healthy");
    }

    for step in 0..edits {
        apply_random_edit(&mut rng, &mut engine);
        let incr = engine.discard_cycle_incremental().expect("solver healthy");

        let cold_engine = gmaa::AnalysisEngine::new(engine.model().clone()).expect("valid");
        let full = cold_engine.discard_cycle().expect("solver healthy");
        assert_eq!(
            incr.non_dominated, full.non_dominated,
            "dominance, seed {seed} step {step}"
        );
        assert_eq!(
            incr.intensity, full.intensity,
            "intensity ranking, seed {seed} step {step}"
        );
        assert_eq!(incr.potential.len(), full.potential.len());
        for (a, b) in incr.potential.iter().zip(&full.potential) {
            assert_eq!(
                a.potentially_optimal, b.potentially_optimal,
                "potential set, seed {seed} step {step}: {a:?} vs {b:?}"
            );
            assert!(
                (a.slack - b.slack).abs() <= 1e-7,
                "slack, seed {seed} step {step}: {a:?} vs {b:?}"
            );
        }

        if (step + 1) % check_every == 0 || step + 1 == edits {
            let analysis = engine.analyze_incremental().expect("solver healthy");
            let mut cold = gmaa::AnalysisEngine::new(engine.model().clone()).expect("valid");
            cold.mc_trials = engine.mc_trials;
            cold.stability_resolution = engine.stability_resolution;
            let reference = cold.analyze().expect("solver healthy");
            assert_eq!(
                analysis.evaluation, reference.evaluation,
                "evaluation, seed {seed} step {step}"
            );
            assert_eq!(analysis.non_dominated, reference.non_dominated);
            assert_eq!(analysis.intensity, reference.intensity);
            assert_eq!(
                analysis.monte_carlo.rank_counts(),
                reference.monte_carlo.rank_counts(),
                "monte carlo, seed {seed} step {step}"
            );
        }
    }
}

/// Warm ≡ cold differential on one generator family member: the
/// blocked-sweep dominance matrix and the warm-started potential
/// optimality chain against the row-major / cold-LP references, plus
/// batch evaluation vs the scalar path. The generator families sweep the
/// difficulty surface (size, depth, band width, weight tightness) that
/// `random_model` only samples accidentally, including the adversarial
/// presets.
fn check_generated_family_case(cfg: &gmaa_gen::GenConfig, with_lp: bool) {
    let label = cfg.label();
    let model = gmaa_gen::generate(cfg);
    let mut ctx = EvalContext::new(model.clone()).expect("valid");
    let n = model.num_alternatives();

    let full = ctx.evaluate();
    let order: Vec<usize> = (0..n).rev().collect();
    for threads in [1usize, 3] {
        let root = model.tree.root();
        let batch = ctx.batch_evaluate_with(root, &order, threads);
        for (pos, &alt) in order.iter().enumerate() {
            assert_bounds_close(&batch[pos], &full.bounds[alt], &format!("batch, {label}"));
        }
    }

    let reference = reference_dominance(&ctx);
    assert_eq!(
        dominance::dominance_matrix_ctx(&ctx),
        reference,
        "dominance matrix, {label}"
    );

    if with_lp {
        // Warm ≡ cold: the warm-started in-place-row LP chain vs fresh
        // cold LPs per alternative.
        let warm_out = potential::potentially_optimal_ctx(&ctx).expect("solver healthy");
        let reference = reference_potential(&ctx);
        for (a, &(optimal, slack)) in warm_out.iter().zip(&reference) {
            assert_eq!(a.potentially_optimal, optimal, "potential set, {label}");
            assert!(
                (a.slack - slack).abs() <= 1e-7,
                "slack, {label}: {} vs {slack}",
                a.slack
            );
        }
    }
}

/// Incremental ≡ full over a generator family member: random edit
/// sequence with per-edit comparison against a cold full recompute.
fn check_generated_family_edits(cfg: &gmaa_gen::GenConfig, edits: usize, check_every: usize) {
    check_edit_sequence_on(
        gmaa_gen::generate(cfg),
        cfg.seed ^ 0x6E9,
        edits,
        check_every,
    );
}

#[test]
fn generated_families_warm_cold_and_incremental_fast() {
    for family in gmaa_gen::Family::ALL {
        for seed in 1..=2 {
            let cfg = gmaa_gen::GenConfig::preset(family, 18, 7, seed);
            check_generated_family_case(&cfg, true);
            check_generated_family_edits(&cfg, 4, 2);
        }
    }
}

#[test]
#[ignore = "slow generator-family differential; CI runs it via --include-ignored"]
fn generated_families_warm_cold_large_sweep() {
    for family in gmaa_gen::Family::ALL {
        for seed in 0..4 {
            check_generated_family_case(&gmaa_gen::GenConfig::preset(family, 80, 10, seed), true);
        }
    }
}

#[test]
#[ignore = "slow generator-family edit histories; CI runs it via --include-ignored"]
fn generated_families_incremental_long_histories() {
    for family in gmaa_gen::Family::ALL {
        for seed in 0..2 {
            check_generated_family_edits(&gmaa_gen::GenConfig::preset(family, 40, 9, seed), 10, 5);
        }
    }
}

#[test]
fn edit_sequence_differential_16_models() {
    for seed in 0..16 {
        check_edit_sequence_case(seed, 6, 3);
    }
}

#[test]
#[ignore = "slow edit-sequence differential; CI runs it via --include-ignored"]
fn edit_sequence_differential_64_models_long_histories() {
    for seed in 0..64 {
        check_edit_sequence_case(seed, 14, 7);
    }
}

#[test]
fn warm_start_lp_differential_64_families() {
    for seed in 0..64 {
        check_warm_start_case(seed, 6);
    }
}

#[test]
fn warm_start_skeleton_families_engage_and_agree() {
    let warm: usize = (0..32).map(check_warm_start_skeleton).sum();
    // 32 families × 8 solves; with gently perturbed rows the warm path
    // must engage for a large share of the chain (the paper model's own
    // chain warm-starts 19 of 23 — that contract lives in maut-sense's
    // unit tests).
    assert!(warm >= 128, "only {warm} of 256 solves warm-started");
}

#[test]
#[ignore = "slow warm-start differential; CI runs it via --include-ignored"]
fn warm_start_lp_differential_256_families() {
    for seed in 0..256 {
        check_warm_start_case(seed, 12);
    }
}

#[test]
fn differential_suite_64_random_models() {
    for seed in 0..64 {
        check_case(seed, 18, 9, 120, false);
    }
}

#[test]
fn paper_model_scalar_and_batched_agree_across_threads() {
    let ctx = EvalContext::new(neon_reuse::paper_model().model).expect("valid");
    let mc = MonteCarlo::new(MonteCarloConfig::ElicitedIntervals, 2_000, 20120402);
    let scalar = mc.run_scalar_ctx(&ctx);
    for threads in [1usize, 2, 8, 0] {
        let run = mc.clone().with_threads(threads).run_ctx(&ctx);
        assert_eq!(scalar.rank_counts(), run.rank_counts(), "{threads} threads");
        assert_eq!(scalar.mean_ranks(), run.mean_ranks());
    }
}

#[test]
fn set_perf_reaches_the_soa_columns_before_batch_evaluate() {
    // The dirty-column regression: a stale SoA would serve pre-mutation
    // utilities to every batch path.
    let mut ctx = EvalContext::new(neon_reuse::paper_model().model).expect("valid");
    let root = ctx.model().tree.root();
    let all: Vec<usize> = (0..23).collect();
    let attr = ctx.model().find_attribute("doc_quality").expect("exists");
    ctx.set_perf(3, attr, Perf::level(3)).expect("valid");
    let batch = ctx.batch_evaluate(root, &all);
    let fresh = EvalContext::new(ctx.model().clone()).expect("valid");
    let fresh_soa = fresh.soa();
    assert_eq!(
        ctx.soa(),
        fresh_soa,
        "SoA columns out of sync after set_perf"
    );
    let mut fresh = fresh;
    let fresh_batch = fresh.batch_evaluate(root, &all);
    assert_eq!(batch, fresh_batch);
}

#[test]
#[ignore = "slow differential suite; CI runs it via --include-ignored"]
fn differential_suite_256_random_models_with_lp() {
    for seed in 0..256 {
        let with_lp = seed % 4 == 0;
        check_case(seed, 30, 12, 400, with_lp);
    }
}
