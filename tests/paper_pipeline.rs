//! End-to-end integration test of the paper reproduction: every headline
//! claim of Sections II–V checked against the reconstructed case study,
//! crossing all crates (neon-reuse → maut → maut-sense → gmaa → statlab).

use gmaa::AnalysisEngine;
use maut::EvalContext;
use maut_sense::{MonteCarlo, MonteCarloConfig, StabilityMode};
use neon_reuse::{activities, dataset};
use statlab::spearman_rho;

/// Fig 10's published mean ranks, used as the ranking ground truth.
const FIG10_MEAN_RANKS: &[(&str, f64)] = &[
    ("COMM", 2.564),
    ("MPEG7 Hunter", 9.959),
    ("MPEG-7X", 7.506),
    ("SAPO", 4.0),
    ("DIG35", 5.0),
    ("CSO", 7.435),
    ("AceMedia VDO", 9.041),
    ("VRACORE3 ASSEM", 11.514),
    ("Boemie VDO", 1.218),
    ("Audio Ontology", 6.0),
    ("Media Ontology", 2.218),
    ("Kanzaki Music", 20.807),
    ("Music Ontology", 13.0),
    ("Music Rights", 16.413),
    ("Open Drama", 20.192),
    ("MPEG7 MDS", 14.728),
    ("VraCore3 Simile", 11.436),
    ("Nokia Ontology", 18.969),
    ("SRO", 16.043),
    ("Device Ontology", 15.049),
    ("MPEG7 Ontology", 23.0),
    ("Photography Ontology", 22.0),
    ("M3O", 17.798),
];

#[test]
fn section2_problem_structure() {
    let data = dataset::paper_model();
    let model = &data.model;
    // 23 candidates, 14 criteria under 4 objectives (Fig 1).
    assert_eq!(model.num_alternatives(), 23);
    assert_eq!(model.num_attributes(), 14);
    assert_eq!(model.tree.get(model.tree.root()).children.len(), 4);
    assert_eq!(model.tree.len(), 1 + 4 + 14);
    model
        .validate()
        .expect("the case study is structurally valid");
}

#[test]
fn section3_preferences() {
    let data = dataset::paper_model();
    let w = data.model.attribute_weights();
    // Fig 5 exact bounds.
    for (triple, (lo, up)) in w.triples.iter().zip(dataset::paper_weight_intervals()) {
        assert!((triple.low - lo).abs() < 1e-9);
        assert!((triple.upp - up).abs() < 1e-9);
    }
    // Missing performances get the [0,1] utility interval (ref [18]).
    let nokia = 17;
    let financ = data.model.find_attribute("financ_cost").expect("exists");
    let band = data.model.utility_band(nokia, financ);
    assert_eq!((band.lo(), band.hi()), (0.0, 1.0));
}

#[test]
fn section4_evaluation_matches_fig6() {
    let model = dataset::paper_model().model;
    let mut ctx = EvalContext::new(model.clone()).expect("valid");
    let eval = ctx.evaluate();
    let ranking = eval.ranking();
    let top: Vec<&str> = ranking.iter().take(5).map(|r| r.name.as_str()).collect();
    assert_eq!(
        top,
        ["Media Ontology", "Boemie VDO", "COMM", "SAPO", "DIG35"]
    );

    // Whole-ranking agreement with the paper: Spearman against Fig 10's
    // mean ranks (negated: higher utility = lower mean rank).
    let avg: Vec<f64> = eval.bounds.iter().map(|b| b.avg).collect();
    let paper: Vec<f64> = FIG10_MEAN_RANKS.iter().map(|(_, r)| -r).collect();
    for (i, (name, _)) in FIG10_MEAN_RANKS.iter().enumerate() {
        assert_eq!(&model.alternatives[i], name, "alternative order");
    }
    let rho = spearman_rho(&avg, &paper).expect("non-degenerate");
    assert!(rho > 0.97, "Spearman vs paper ranking = {rho:.4}");

    // "The utility difference among the eight best-ranked candidates is
    // less than 0.1" (ours: 0.11) and the intervals overlap heavily.
    assert!(eval.avg_gap(7) < 0.12);
    assert_eq!(eval.overlap_with_best(), 22);
}

#[test]
fn section5_stability_identifies_the_papers_two_criteria() {
    let model = dataset::paper_model().model;
    let funct = model.tree.find("funct_requir").expect("exists");
    let naming = model.tree.find("naming_conv").expect("exists");
    let ctx = EvalContext::new(model.clone()).expect("valid");
    let rf = maut_sense::stability_interval_ctx(&ctx, funct, StabilityMode::BestAlternative, 300);
    let rn = maut_sense::stability_interval_ctx(&ctx, naming, StabilityMode::BestAlternative, 300);
    assert!(!rf.is_fully_stable(1e-4), "funct requir sensitive: {rf:?}");
    assert!(!rn.is_fully_stable(1e-4), "naming conv sensitive: {rn:?}");
    // Understandability (and its three criteria) are fully stable.
    for key in [
        "understandability",
        "doc_quality",
        "ext_knowledge",
        "code_clarity",
    ] {
        let id = model.tree.find(key).expect("exists");
        let r = maut_sense::stability_interval_ctx(&ctx, id, StabilityMode::BestAlternative, 300);
        assert!(r.is_fully_stable(1e-4), "{key} should be stable: {r:?}");
    }
}

#[test]
fn section5_dominance_and_potential_optimality() {
    let model = dataset::paper_model().model;
    let ctx = EvalContext::new(model).expect("valid");
    let nd = maut_sense::non_dominated_ctx(&ctx);
    let po = maut_sense::potentially_optimal_ctx(&ctx).expect("solver healthy");
    let survivors = po.iter().filter(|o| o.potentially_optimal).count();
    // Paper: 20 of 23 survive; our reconstruction keeps the entire upper
    // half. Potential optimality must imply non-dominance.
    assert!(survivors >= 10);
    assert!(nd.len() >= survivors);
    for o in &po {
        if o.potentially_optimal && o.slack > 1e-6 {
            assert!(nd.contains(&o.alternative));
        }
    }
    // The paper's explicitly discarded candidates are discarded here too.
    let discarded: Vec<&str> = po
        .iter()
        .filter(|o| !o.potentially_optimal)
        .map(|o| o.name.as_str())
        .collect();
    assert!(discarded.contains(&"Kanzaki Music"));
    assert!(discarded.contains(&"Photography Ontology"));
}

#[test]
fn section5_monte_carlo_robustness() {
    let model = dataset::paper_model().model;
    let ctx = EvalContext::new(model.clone()).expect("valid");
    let result = MonteCarlo::new(MonteCarloConfig::ElicitedIntervals, 10_000, 99).run_ctx(&ctx);

    // Only Media Ontology and Boemie VDO ever rank first.
    let ever: Vec<&str> = result
        .ever_rank_one()
        .into_iter()
        .map(|i| model.alternatives[i].as_str())
        .collect();
    assert_eq!(ever, ["Boemie VDO", "Media Ontology"]);

    // Top five fluctuate by at most two positions.
    assert!(result.fluctuation_of_top(5) <= 2);

    // Mean ranks correlate strongly with Fig 10.
    let means = result.mean_ranks();
    let paper: Vec<f64> = FIG10_MEAN_RANKS.iter().map(|(_, r)| *r).collect();
    let rho = spearman_rho(&means, &paper).expect("non-degenerate");
    assert!(rho > 0.97, "MC mean-rank Spearman = {rho:.4}");

    // The five best by mean rank are the paper's five best.
    let mut order: Vec<usize> = (0..23).collect();
    order.sort_by(|&a, &b| means[a].total_cmp(&means[b]));
    let mut top5: Vec<&str> = order
        .iter()
        .take(5)
        .map(|&i| model.alternatives[i].as_str())
        .collect();
    top5.sort_unstable();
    assert_eq!(
        top5,
        ["Boemie VDO", "COMM", "DIG35", "Media Ontology", "SAPO"]
    );
}

#[test]
fn section6_final_selection() {
    let data = dataset::paper_model();
    let mut ctx = EvalContext::new(data.model).expect("valid");
    let report =
        activities::select_by_ranking_ctx(&mut ctx, &data.cq_sets, dataset::TOTAL_CQS, 0.70);
    assert!(report.target_reached);
    assert_eq!(
        report.selected_names.len(),
        5,
        "{:?}",
        report.selected_names
    );
    assert!(report.coverage > 0.70);
    assert_eq!(
        report.selected_names,
        ["Media Ontology", "Boemie VDO", "COMM", "SAPO", "DIG35"]
    );
}

#[test]
fn gmaa_facade_runs_the_whole_cycle() {
    let mut g = AnalysisEngine::new(dataset::paper_model().model).expect("valid");
    g.mc_trials = 1_000;
    g.stability_resolution = 50;
    let analysis = g.analyze().expect("solver healthy");
    assert_eq!(analysis.evaluation.bounds.len(), 23);
    assert_eq!(analysis.potential.len(), 23);
    assert_eq!(analysis.monte_carlo.trials, 1_000);
    assert!(analysis.survivors().len() >= 10);
    // Reports render for every stage.
    assert!(!gmaa::report::hierarchy(g.model()).is_empty());
    assert!(!gmaa::report::ranking(g.model(), &analysis.evaluation).is_empty());
    assert!(!gmaa::report::stability(g.model(), &analysis.stability).is_empty());
    assert!(!gmaa::report::rank_statistics(&analysis.monte_carlo.stats).is_empty());
}

#[test]
fn monte_carlo_trial_budget_is_justified() {
    // The paper uses 10 000 trials without argument; show the headline
    // statistic (Media Ontology's mean rank) stabilizes well before that.
    let model = dataset::paper_model().model;
    let media = model
        .alternatives
        .iter()
        .position(|n| n == "Media Ontology")
        .expect("present");
    let matrix = model.avg_utility_matrix();
    let w = model.attribute_weights();
    let sampler = statlab::SimplexSampler::new(
        model.num_attributes(),
        statlab::WeightScheme::Intervals {
            lower: w.lows(),
            upper: w.upps(),
        },
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(41);
    let mut tracker = statlab::ConvergenceTracker::new(250, 4, 0.01);
    for _ in 0..10_000 {
        let weights = sampler.sample(&mut rng);
        let scores: Vec<f64> = matrix
            .iter()
            .map(|row| row.iter().zip(&weights).map(|(u, wi)| u * wi).sum())
            .collect();
        let ranks = statlab::rank_vector(&scores, statlab::TieBreak::Min);
        tracker.push(ranks[media]);
    }
    assert!(
        tracker.converged(),
        "mean rank must stabilize within 10k trials"
    );
    let at = tracker.converged_at().expect("converged");
    assert!(at <= 5_000, "stabilizes early (at {at} trials)");
    assert!(tracker.mean() < 1.5, "Media's mean rank ≈ 1");
}
